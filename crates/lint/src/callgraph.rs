//! A conservative, name-resolved call graph over the workspace.
//!
//! Calls resolve only when the analysis can justify the target:
//! `self.method()` within the impl type, `expr.method()` when the receiver
//! path types out to a known struct, `Type::assoc(...)` by impl type, and
//! `module::free(...)` by file stem. Everything else is **opaque** — an
//! unresolved call contributes nothing, so imprecision silences findings
//! rather than inventing them.
//!
//! Each function gets a [`Summary`] of the locks it acquires and whether
//! it can block, closed transitively over resolved calls, which is what
//! lets the guard-liveness walk in [`crate::dataflow`] see one call level
//! past a held guard (`refresh → plan::execute → … → pool.run_scoped`).

use std::collections::BTreeSet;

use crate::dataflow::{scan_direct, Direct};
use crate::symbols::Workspace;

/// What one function does, directly and through resolved calls.
#[derive(Debug, Default, Clone)]
pub struct Summary {
    /// Canonical lock names acquired in this fn's own body.
    pub acquires: BTreeSet<String>,
    /// Canonical lock names acquired here or in any resolved callee.
    pub acquires_star: BTreeSet<String>,
    /// Description of a direct blocking call (`wait`, `run_scoped`, …).
    pub blocks: Option<String>,
    /// Description of a blocking call reachable through resolved calls,
    /// qualified with the path (`run_scoped via plan::execute`).
    pub blocks_star: Option<String>,
    /// The lock whose guard this fn returns, when its return type is a
    /// guard (`fn lock(&self) -> MutexGuard<'_, Inner>` patterns).
    pub returns_guard: Option<String>,
    /// Resolved callee function ids.
    pub calls: BTreeSet<usize>,
}

/// Builds per-function summaries and closes them over the call graph.
pub fn summarize(ws: &Workspace) -> Vec<Summary> {
    let mut summaries: Vec<Summary> = ws
        .fns
        .iter()
        .enumerate()
        .map(|(id, _)| {
            let Direct { acquires, blocks, calls, returns_guard } = scan_direct(ws, id);
            Summary {
                acquires_star: acquires.clone(),
                acquires,
                blocks_star: blocks.clone(),
                blocks,
                returns_guard,
                calls,
            }
        })
        .collect();

    // Fixpoint: propagate acquisitions and blocking reachability up the
    // (acyclic or not) resolved call graph. Bounded by the total number of
    // (fn, lock) pairs, so it terminates even on recursive code.
    loop {
        let mut changed = false;
        for id in 0..summaries.len() {
            let callees: Vec<usize> = summaries[id].calls.iter().copied().collect();
            for callee in callees {
                if callee == id {
                    continue;
                }
                let (acq, blk, callee_name) = {
                    let s = &summaries[callee];
                    (s.acquires_star.clone(), s.blocks_star.clone(), fn_label(ws, callee))
                };
                let me = &mut summaries[id];
                for a in acq {
                    changed |= me.acquires_star.insert(a);
                }
                if me.blocks_star.is_none() {
                    if let Some(why) = blk {
                        // Keep the first hop visible: `wait via Latch::wait`.
                        let why = if why.contains(" via ") {
                            let head = why.split(" via ").next().unwrap_or(&why).to_string();
                            format!("{head} via {callee_name}")
                        } else {
                            format!("{why} via {callee_name}")
                        };
                        me.blocks_star = Some(why);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    summaries
}

/// Human label for a function: `Type::name` or `module::name`.
pub fn fn_label(ws: &Workspace, id: usize) -> String {
    let f = &ws.fns[id];
    match &f.item.self_ty {
        Some(ty) => format!("{ty}::{}", f.item.name),
        None => {
            let module = crate::symbols::module_name(&ws.paths[f.file]);
            format!("{module}::{}", f.item.name)
        }
    }
}

/// Resolves a method call through its receiver path (`["self", "metrics"]`
/// + `record_hit`) to a function id, or `None` (opaque).
pub fn resolve_method(
    ws: &Workspace,
    self_ty: Option<&str>,
    recv_struct: Option<&str>,
    name: &str,
) -> Option<usize> {
    let _ = self_ty;
    let s = recv_struct?;
    ws.methods.get(&(s.to_string(), name.to_string())).copied()
}

/// Resolves a qualified or bare call (`plan::execute`, `Latch::new`,
/// `execute_monitored`) to a function id, or `None` (opaque).
pub fn resolve_path_call(
    ws: &Workspace,
    file: usize,
    qualifier: Option<&str>,
    name: &str,
) -> Option<usize> {
    match qualifier {
        Some(q) if !matches!(q, "crate" | "self" | "super") => {
            if ws.structs.contains_key(q) || ws.aliases.contains_key(q) {
                // `Type::assoc(...)`, resolving aliases to their struct.
                let target = if ws.structs.contains_key(q) {
                    Some(q.to_string())
                } else {
                    ws.aliases.get(q).and_then(|raw| {
                        let norm = crate::symbols::normalize_type(raw, None);
                        ws.struct_in_type(&norm).map(str::to_string)
                    })
                };
                return ws.methods.get(&(target?, name.to_string())).copied();
            }
            if let Some(&mfile) = ws.modules.get(q) {
                return ws.free_in_file.get(&(mfile, name.to_string())).copied();
            }
            // Unknown qualifier (std type, foreign crate): opaque.
            None
        }
        _ => {
            // Bare or crate-relative: same file first, then a workspace-wide
            // unique free fn.
            if let Some(&id) = ws.free_in_file.get(&(file, name.to_string())) {
                return Some(id);
            }
            match ws.free_fns.get(name).map(Vec::as_slice) {
                Some([only]) => Some(*only),
                _ => None,
            }
        }
    }
}
