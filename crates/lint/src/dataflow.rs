//! Guard-liveness dataflow and the three semantic rules.
//!
//! Binding a `.lock()` / `.read()` / `.write()` result (or a call that
//! returns a guard, like `Metrics::lock`) starts a **guard region** that
//! ends at `drop(guard)`, at the end of the enclosing block, or — for
//! unbound temporaries — at the end of the statement. While a region is
//! live:
//!
//! * acquiring another lock adds an edge to the global **lock-order
//!   graph** (`lock-order-inversion` reports any cycle, with the witness
//!   site of every edge);
//! * a blocking call (`Condvar::wait`, `WorkerPool::spawn`/`run_scoped`,
//!   ticket `wait*`, channel `recv*`, `join`) is `lock-held-across-
//!   blocking` — unless the guard is *passed to* the wait, which releases
//!   it (the condvar protocol);
//! * resolved callees contribute their transitive lock/blocking summary,
//!   so a guard held across `plan::execute` sees the `run_scoped` four
//!   frames down.
//!
//! A third rule, `alloc-in-kernel-hot-loop`, flags `Vec::new` / `vec!` /
//! `.push` / `.to_vec` / `.collect` inside loop bodies of the propagation
//! kernels, which must stay on `SpmvScratch`'s recycled buffers.
//!
//! Unresolvable receivers are skipped, not guessed: imprecision silences
//! a finding rather than inventing one.

use std::collections::{BTreeMap, BTreeSet};

use crate::analyze::Finding;
use crate::callgraph::{fn_label, resolve_method, resolve_path_call, Summary};
use crate::lexer::{Token, TokenKind};
use crate::parse::{Block, Elem, Stmt};
use crate::rules::RuleId;
use crate::symbols::{normalize_type, Workspace};

/// Method names that block the calling thread.
pub const BLOCKING_METHODS: [&str; 9] = [
    "wait",
    "wait_timeout",
    "wait_while",
    "run_scoped",
    "spawn",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "join",
];

/// Guard-producing method names (empty-argument forms only, so
/// `io::Write::write(buf)` and `Read::read(buf)` never match).
const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Adapter methods that keep a guard chain a guard (`.lock()
/// .unwrap_or_else(PoisonError::into_inner)` is still the guard).
const CHAIN_ADAPTERS: [&str; 3] = ["unwrap_or_else", "unwrap", "expect"];

/// What one function does directly (input to [`crate::callgraph`]).
#[derive(Debug, Default)]
pub struct Direct {
    /// Canonical lock names acquired in the body.
    pub acquires: BTreeSet<String>,
    /// First directly-blocking call name, if any.
    pub blocks: Option<String>,
    /// Resolved callee function ids.
    pub calls: BTreeSet<usize>,
    /// Lock whose guard the fn returns (guard-typed return + acquisition).
    pub returns_guard: Option<String>,
}

/// One edge of the discovered lock-order graph, with its witness site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Canonical name of the lock held.
    pub from: String,
    /// Canonical name of the lock acquired while holding `from`.
    pub to: String,
    /// Witness file.
    pub file: String,
    /// Witness line (1-based).
    pub line: u32,
    /// Witness column (1-based).
    pub col: u32,
    /// Function containing the witness.
    pub func: String,
}

/// The semantic pass output: findings plus the deduplicated edge list.
#[derive(Debug, Default)]
pub struct SemanticOutput {
    /// `lock-held-across-blocking`, `alloc-in-kernel-hot-loop` and
    /// `lock-order-inversion` findings, unsorted.
    pub findings: Vec<Finding>,
    /// Lock-order edges, one witness per `(from, to)` pair, sorted.
    pub edges: Vec<LockEdge>,
}

/// Scans one function's body for its direct facts (no interprocedural
/// context, findings discarded).
pub fn scan_direct(ws: &Workspace, fn_id: usize) -> Direct {
    let mut w = Walker::new(ws, None, fn_id);
    let body = ws.fns[fn_id].item.body.clone();
    w.walk_block(&body, 1, 0);
    let f = ws.fns[fn_id].item;
    if normalize_type(&f.ret, f.self_ty.as_deref()).contains("Guard") {
        w.direct.returns_guard = w.last_acquire.clone();
    }
    w.direct
}

/// Runs the full semantic pass over every non-test function.
pub fn analyze_semantic(ws: &Workspace, summaries: &[Summary]) -> SemanticOutput {
    let mut findings = Vec::new();
    let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if f.item.in_test {
            continue;
        }
        let mut w = Walker::new(ws, Some(summaries), id);
        let body = f.item.body.clone();
        w.walk_block(&body, 1, 0);
        findings.append(&mut w.findings);
        for e in w.edges {
            if e.from != e.to {
                edges.entry((e.from.clone(), e.to.clone())).or_insert(e);
            }
        }
    }
    let edges: Vec<LockEdge> = edges.into_values().collect();
    findings.extend(cycle_findings(&edges));
    SemanticOutput { findings, edges }
}

/// A live guard region.
struct Guard {
    /// The binding name (`None` for statement temporaries).
    name: Option<String>,
    /// Canonical lock name.
    lock: String,
    /// Block depth of the binding (the region dies when its block exits).
    depth: usize,
    /// Statement id of the binding (temporaries die at statement end).
    stmt: u64,
}

struct Walker<'w, 'a> {
    ws: &'w Workspace<'a>,
    summaries: Option<&'w [Summary]>,
    file: usize,
    self_ty: Option<String>,
    func: String,
    params: BTreeMap<String, String>,
    locals: BTreeMap<String, String>,
    guards: Vec<Guard>,
    next_stmt: u64,
    alloc_scope: bool,
    last_acquire: Option<String>,
    direct: Direct,
    findings: Vec<Finding>,
    edges: Vec<LockEdge>,
}

impl<'w, 'a> Walker<'w, 'a> {
    fn new(ws: &'w Workspace<'a>, summaries: Option<&'w [Summary]>, fn_id: usize) -> Self {
        let f = &ws.fns[fn_id];
        let self_ty = f.item.self_ty.clone();
        let params = f
            .item
            .params
            .iter()
            .map(|p| (p.name.clone(), normalize_type(&p.ty, self_ty.as_deref())))
            .collect();
        let path = &ws.paths[f.file];
        Walker {
            ws,
            summaries,
            file: f.file,
            func: fn_label(ws, fn_id),
            self_ty,
            params,
            locals: BTreeMap::new(),
            guards: Vec::new(),
            next_stmt: 0,
            alloc_scope: RuleId::AllocInKernelHotLoop.applies_to(path),
            last_acquire: None,
            direct: Direct::default(),
            findings: Vec::new(),
            edges: Vec::new(),
        }
    }

    fn path(&self) -> &str {
        &self.ws.paths[self.file]
    }

    fn walk_block(&mut self, block: &Block, depth: usize, loop_depth: usize) {
        for stmt in &block.stmts {
            self.walk_stmt(stmt, depth, loop_depth);
        }
        self.guards.retain(|g| g.depth < depth);
    }

    fn walk_stmt(&mut self, stmt: &Stmt, depth: usize, loop_depth: usize) {
        let stmt_id = self.next_stmt;
        self.next_stmt += 1;

        // Statement-level token list (nested blocks excluded) and the
        // paren depth at each position, for binding detection.
        let flat: Vec<&Token> = stmt
            .elems
            .iter()
            .filter_map(|e| match e {
                Elem::Tok(t) => Some(t),
                Elem::Block(_) => None,
            })
            .collect();
        let mut pdepth = vec![0i64; flat.len()];
        let mut d = 0i64;
        for (i, t) in flat.iter().enumerate() {
            pdepth[i] = d;
            match t.text.as_str() {
                "(" | "[" => d += 1,
                ")" | "]" => d -= 1,
                _ => {}
            }
        }

        let let_name = self.scan_let(&flat, stmt_id);

        // Walk elements in order, interleaving token events with nested
        // blocks so guard lifetimes line up with source order.
        let mut fi = 0usize; // cursor into `flat`
        let mut since_block_start = 0usize;
        for elem in &stmt.elems {
            match elem {
                Elem::Tok(_) => {
                    self.token_event(&flat, &pdepth, fi, stmt_id, depth, let_name.as_deref());
                    if loop_depth > 0 {
                        self.alloc_event(&flat, fi);
                    }
                    fi += 1;
                }
                Elem::Block(b) => {
                    let header = &flat[since_block_start..fi];
                    let looping = header.iter().any(|t| {
                        t.kind == TokenKind::Ident
                            && matches!(t.text.as_str(), "for" | "while" | "loop")
                    });
                    since_block_start = fi;
                    let child_loop = loop_depth + usize::from(looping);
                    self.walk_block(b, depth + 1, child_loop);
                }
            }
        }

        // Temporaries die with the statement.
        self.guards.retain(|g| !(g.stmt == stmt_id && g.name.is_none()));
    }

    /// Records `let` bindings' declared or constructor-inferred types.
    /// Returns the bound name for simple `let name = ...` statements.
    fn scan_let(&mut self, flat: &[&Token], _stmt: u64) -> Option<String> {
        if flat.first()?.text != "let" {
            return None;
        }
        let mut i = 1;
        if flat.get(i)?.text == "mut" {
            i += 1;
        }
        let name_tok = flat.get(i)?;
        if name_tok.kind != TokenKind::Ident {
            return None;
        }
        let name = name_tok.text.clone();
        match flat.get(i + 1).map(|t| t.text.as_str()) {
            Some(":") => {
                // `let x: Ty = ...` — record the annotation.
                let tstart = i + 2;
                let mut k = tstart;
                let mut d = 0i64;
                while k < flat.len() {
                    match flat[k].text.as_str() {
                        "(" | "[" | "<" => d += 1,
                        ")" | "]" | ">" => d -= 1,
                        "-" if flat.get(k + 1).is_some_and(|t| t.text == ">") => k += 1,
                        "=" if d <= 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                let raw: Vec<&str> = flat[tstart..k].iter().map(|t| t.text.as_str()).collect();
                let norm = normalize_type(&raw.join(" "), self.self_ty.as_deref());
                self.locals.insert(name.clone(), norm);
            }
            Some("=") => {
                // `let x = Type::ctor(...)` — infer from the first known
                // struct/alias used as a path qualifier in the initializer.
                for k in i + 2..flat.len().saturating_sub(2) {
                    let t = flat[k];
                    if t.kind == TokenKind::Ident
                        && flat[k + 1].text == ":"
                        && flat[k + 2].text == ":"
                    {
                        if let Some(s) = self.ws.struct_in_type(&t.text) {
                            self.locals.insert(name.clone(), s.to_string());
                            break;
                        }
                    }
                }
            }
            _ => return None, // patterns (`let (a, b) = ...`) bind nothing
        }
        Some(name)
    }

    /// Handles the token event starting at `flat[i]`, if any.
    fn token_event(
        &mut self,
        flat: &[&Token],
        pdepth: &[i64],
        i: usize,
        stmt_id: u64,
        depth: usize,
        let_name: Option<&str>,
    ) {
        let t = flat[i];
        let text = t.text.as_str();
        let next = flat.get(i + 1).map(|t| t.text.as_str());

        // `drop(guard)` ends the named region.
        if text == "drop"
            && next == Some("(")
            && flat.get(i + 2).is_some_and(|t| t.kind == TokenKind::Ident)
            && flat.get(i + 3).is_some_and(|t| t.text == ")")
        {
            let victim = flat[i + 2].text.clone();
            self.guards.retain(|g| g.name.as_deref() != Some(victim.as_str()));
            return;
        }

        // Direct acquisition: `.lock()` / `.read()` / `.write()` with
        // empty argument lists.
        if text == "."
            && flat.get(i + 1).is_some_and(|t| {
                t.kind == TokenKind::Ident && ACQUIRE_METHODS.contains(&t.text.as_str())
            })
            && flat.get(i + 2).is_some_and(|t| t.text == "(")
            && flat.get(i + 3).is_some_and(|t| t.text == ")")
        {
            let segments = self.receiver_path(flat, i);
            if let Some(segs) = &segments {
                if let Some(lock) = self.resolve_lock(segs) {
                    self.acquire(&lock, flat, pdepth, i, stmt_id, depth, let_name);
                    return;
                }
            }
            // Not a std lock on a known field: maybe a workspace method
            // named `lock` (`Metrics::lock`) — fall through to call
            // handling below via the method-name position.
        }

        // Calls: `name(` — method (`.name(`), qualified (`path::name(`)
        // or bare (`name(`).
        if t.kind == TokenKind::Ident && next == Some("(") && !is_call_keyword(text) {
            let prev = i.checked_sub(1).map(|p| flat[p].text.as_str());
            let callee = if prev == Some(".") {
                let recv = self.receiver_path(flat, i - 1);
                let recv_struct = recv.as_deref().and_then(|s| self.resolve_recv_struct(s));
                resolve_method(self.ws, self.self_ty.as_deref(), recv_struct.as_deref(), text)
            } else if prev == Some(":") && i >= 3 && flat[i - 2].text == ":" {
                let q = (flat[i - 3].kind == TokenKind::Ident).then(|| flat[i - 3].text.as_str());
                resolve_path_call(self.ws, self.file, q, text)
            } else if flat.get(i.wrapping_sub(1)).is_some_and(|t| t.text == "fn") {
                None // a nested `fn name(...)` declaration, not a call
            } else {
                resolve_path_call(self.ws, self.file, None, text)
            };
            self.call_event(callee, text, flat, pdepth, i, stmt_id, depth, let_name);
        }
    }

    /// Processes a (possibly unresolved) call at `flat[i]`.
    #[allow(clippy::too_many_arguments)]
    fn call_event(
        &mut self,
        callee: Option<usize>,
        name: &str,
        flat: &[&Token],
        pdepth: &[i64],
        i: usize,
        stmt_id: u64,
        depth: usize,
        let_name: Option<&str>,
    ) {
        if let Some(id) = callee {
            self.direct.calls.insert(id);
        }
        if BLOCKING_METHODS.contains(&name) && self.direct.blocks.is_none() {
            self.direct.blocks = Some(name.to_string());
        }
        let Some(summaries) = self.summaries else {
            return; // direct-fact scan: no interprocedural context
        };
        let summary = callee.map(|id| &summaries[id]);

        // The blocking description: a blocking name, or a resolved callee
        // that can transitively block.
        let blocking = if BLOCKING_METHODS.contains(&name) {
            Some(name.to_string())
        } else {
            summary.and_then(|s| s.blocks_star.clone()).map(|why| format!("{name} → {why}"))
        };
        if let Some(desc) = blocking {
            // Guards passed as arguments are *released* by the wait
            // (the condvar protocol), so they are not held across it.
            let args = self.call_arg_idents(flat, i + 1);
            let held: Vec<String> = self
                .guards
                .iter()
                .filter(|g| g.name.as_deref().is_none_or(|n| !args.contains(n)))
                .map(|g| g.lock.clone())
                .collect();
            if !held.is_empty() && RuleId::LockHeldAcrossBlocking.applies_to(self.path()) {
                let t = flat[i];
                self.findings.push(Finding {
                    rule: RuleId::LockHeldAcrossBlocking,
                    file: self.path().to_string(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "guard of `{}` held across blocking call `{desc}` in `{}`; \
                         drop the guard before blocking, or waive with the \
                         protocol that makes this safe",
                        held.join("`, `"),
                        self.func,
                    ),
                });
            }
        }

        let Some(s) = summary else { return };
        // One call level past the held region: the callee's transitive
        // acquisitions order after every live guard.
        let t = flat[i];
        let acquired: Vec<String> = s.acquires_star.iter().cloned().collect();
        let held: Vec<String> = self.guards.iter().map(|g| g.lock.clone()).collect();
        for from in held {
            for to in &acquired {
                if &from != to {
                    self.edges.push(LockEdge {
                        from: from.clone(),
                        to: to.clone(),
                        file: self.path().to_string(),
                        line: t.line,
                        col: t.col,
                        func: self.func.clone(),
                    });
                }
            }
        }
        // A guard-returning callee bound by a `let` starts a region.
        if let (Some(lock), Some(bind)) = (&s.returns_guard, let_name) {
            if pdepth[i] == 0 && self.chain_ends(flat, i) {
                let lock = lock.clone();
                self.start_guard(&lock, Some(bind.to_string()), stmt_id, depth);
            }
        }
    }

    /// Records a direct acquisition of `lock` at `flat[i]` (the `.`).
    #[allow(clippy::too_many_arguments)]
    fn acquire(
        &mut self,
        lock: &str,
        flat: &[&Token],
        pdepth: &[i64],
        i: usize,
        stmt_id: u64,
        depth: usize,
        let_name: Option<&str>,
    ) {
        self.direct.acquires.insert(lock.to_string());
        self.last_acquire = Some(lock.to_string());
        if self.summaries.is_some() {
            let t = flat[i + 1];
            for g in &self.guards {
                if g.lock != lock {
                    self.edges.push(LockEdge {
                        from: g.lock.clone(),
                        to: lock.to_string(),
                        file: self.path().to_string(),
                        line: t.line,
                        col: t.col,
                        func: self.func.clone(),
                    });
                }
            }
        }
        // Bound guard iff the `let` initializer *is* this guard chain at
        // paren depth zero; everything else is a statement temporary.
        let bound =
            let_name.filter(|_| pdepth[i] == 0 && self.chain_ends(flat, i)).map(str::to_string);
        self.start_guard(lock, bound, stmt_id, depth);
    }

    fn start_guard(&mut self, lock: &str, name: Option<String>, stmt_id: u64, depth: usize) {
        // Re-binding a name replaces the old region.
        if let Some(n) = &name {
            self.guards.retain(|g| g.name.as_deref() != Some(n.as_str()));
        }
        self.guards.push(Guard { name, lock: lock.to_string(), depth, stmt: stmt_id });
    }

    /// Whether the call/acquisition whose name sits at or after `flat[i]`
    /// ends the expression chain (only poison-recovery adapters may
    /// follow). A trailing `.clone()`/`.iter()`/... means the binding is a
    /// derived value, not the guard.
    fn chain_ends(&self, flat: &[&Token], i: usize) -> bool {
        // Find the `(` that opens this call's arguments.
        let mut j = i;
        while j < flat.len() && flat[j].text != "(" {
            j += 1;
        }
        loop {
            // Skip the balanced argument list.
            let mut d = 0i64;
            while j < flat.len() {
                match flat[j].text.as_str() {
                    "(" => d += 1,
                    ")" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            j += 1; // past the `)`
            if flat.get(j).is_some_and(|t| t.text == "?") {
                j += 1;
            }
            if flat.get(j).is_none_or(|t| t.text != ".") {
                return true;
            }
            let adapter =
                flat.get(j + 1).is_some_and(|t| CHAIN_ADAPTERS.contains(&t.text.as_str()));
            if !adapter {
                return false;
            }
            j += 2; // at the adapter's `(`
        }
    }

    /// Identifier arguments of the call whose `(` is at `flat[open]`.
    fn call_arg_idents(&self, flat: &[&Token], open: usize) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut d = 0i64;
        let mut j = open;
        while j < flat.len() {
            match flat[j].text.as_str() {
                "(" => d += 1,
                ")" => {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                _ => {
                    if flat[j].kind == TokenKind::Ident && d > 0 {
                        out.insert(flat[j].text.clone());
                    }
                }
            }
            j += 1;
        }
        out
    }

    /// Walks back from the `.` at `flat[dot]` collecting a simple
    /// `base.field.field` receiver path; `None` when the receiver is a
    /// call result, indexing or other complex expression.
    fn receiver_path(&self, flat: &[&Token], dot: usize) -> Option<Vec<String>> {
        let mut segments: Vec<String> = Vec::new();
        let mut k = dot;
        loop {
            if k == 0 || flat[k].text != "." {
                break;
            }
            let prev = flat.get(k - 1)?;
            if prev.kind != TokenKind::Ident {
                return None; // `foo().bar` / `xs[i].bar` / literal
            }
            segments.push(prev.text.clone());
            if k < 2 {
                k = 0;
                break;
            }
            k -= 2;
            if flat[k + 1].text != "." && flat.get(k).is_some_and(|t| t.text == ".") {
                continue;
            }
            if flat.get(k).is_some_and(|t| t.text == ".") {
                continue;
            }
            k += 1;
            break;
        }
        if segments.is_empty() {
            return None;
        }
        // The token before the path head must not extend the expression.
        if k > 0 {
            let before = flat.get(k - 1).map(|t| t.text.as_str());
            if matches!(before, Some(")") | Some("]")) {
                return None;
            }
        }
        segments.reverse();
        Some(segments)
    }

    /// The type string of a path head: `self`, a parameter, an inferred
    /// local, or a static.
    fn base_type(&self, head: &str) -> Option<String> {
        if head == "self" {
            return self.self_ty.clone();
        }
        if let Some(ty) = self.locals.get(head) {
            return Some(ty.clone());
        }
        if let Some(ty) = self.params.get(head) {
            return Some(ty.clone());
        }
        if let Some(raw) = self.ws.statics.get(head) {
            return Some(normalize_type(raw, None));
        }
        None
    }

    /// Resolves a receiver path to the canonical lock it acquires, if its
    /// last segment is a lock-typed field (or the head itself is
    /// lock-typed for single-segment paths).
    fn resolve_lock(&self, segments: &[String]) -> Option<String> {
        let mut ty = self.base_type(&segments[0])?;
        if segments.len() == 1 {
            return self.ws.lock_in_type(&ty, self.self_ty.as_deref());
        }
        for seg in &segments[1..segments.len() - 1] {
            let s = self.ws.struct_in_type(&ty)?.to_string();
            let raw = self.ws.structs.get(&s)?.fields.get(seg)?.clone();
            ty = normalize_type(&raw, Some(&s));
        }
        let owner = self.ws.struct_in_type(&ty)?.to_string();
        self.ws.field_lock(&owner, segments.last()?)
    }

    /// Resolves a receiver path to the struct providing its methods.
    fn resolve_recv_struct(&self, segments: &[String]) -> Option<String> {
        let mut ty = self.base_type(&segments[0])?;
        for seg in &segments[1..] {
            let s = self.ws.struct_in_type(&ty)?.to_string();
            let raw = self.ws.structs.get(&s)?.fields.get(seg)?.clone();
            ty = normalize_type(&raw, Some(&s));
        }
        self.ws.struct_in_type(&ty).map(str::to_string)
    }

    /// Flags allocation in a kernel hot loop at `flat[i]`.
    fn alloc_event(&mut self, flat: &[&Token], i: usize) {
        if !self.alloc_scope {
            return;
        }
        let t = flat[i];
        let next = flat.get(i + 1).map(|t| t.text.as_str());
        let what = if t.text == "Vec"
            && next == Some(":")
            && flat.get(i + 2).is_some_and(|t| t.text == ":")
            && flat.get(i + 3).is_some_and(|t| t.text == "new")
        {
            Some("Vec::new")
        } else if t.kind == TokenKind::Ident && t.text == "vec" && next == Some("!") {
            Some("vec!")
        } else if t.text == "."
            && flat
                .get(i + 1)
                .is_some_and(|t| matches!(t.text.as_str(), "push" | "to_vec" | "collect"))
            && flat.get(i + 2).is_some_and(|t| t.text == "(" || t.text == ":")
        {
            match flat[i + 1].text.as_str() {
                "push" => Some(".push"),
                "to_vec" => Some(".to_vec"),
                _ => Some(".collect"),
            }
        } else {
            None
        };
        if let Some(what) = what {
            self.findings.push(Finding {
                rule: RuleId::AllocInKernelHotLoop,
                file: self.path().to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{what}` inside a kernel hot loop: propagation kernels must \
                     reuse `SpmvScratch` buffers, or waive with the reservation \
                     argument"
                ),
            });
        }
    }
}

fn is_call_keyword(text: &str) -> bool {
    matches!(
        text,
        "if" | "while"
            | "for"
            | "match"
            | "loop"
            | "return"
            | "in"
            | "as"
            | "move"
            | "break"
            | "continue"
            | "let"
            | "else"
            | "unsafe"
            | "fn"
            | "ref"
            | "mut"
    )
}

/// Detects cycles in the deduplicated edge list and reports one finding
/// per strongly-connected component, listing every intra-component edge
/// with its witness chain.
pub fn cycle_findings(edges: &[LockEdge]) -> Vec<Finding> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for e in edges {
        nodes.insert(&e.from);
        nodes.insert(&e.to);
    }
    let index: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let names: Vec<&str> = nodes.into_iter().collect();
    let n = names.len();
    let mut fwd = vec![Vec::new(); n];
    let mut rev = vec![Vec::new(); n];
    for e in edges {
        let (a, b) = (index[e.from.as_str()], index[e.to.as_str()]);
        fwd[a].push(b);
        rev[b].push(a);
    }

    // Kosaraju, iteratively: finish order on the forward graph, then
    // component sweep on the transpose.
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        seen[start] = true;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < fwd[v].len() {
                let w = fwd[v][*next];
                *next += 1;
                if !seen[w] {
                    seen[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut ncomp = 0usize;
    for &start in order.iter().rev() {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start] = ncomp;
        while let Some(v) = stack.pop() {
            for &w in &rev[v] {
                if comp[w] == usize::MAX {
                    comp[w] = ncomp;
                    stack.push(w);
                }
            }
        }
        ncomp += 1;
    }

    let mut findings = Vec::new();
    for c in 0..ncomp {
        let members: Vec<usize> = (0..n).filter(|&v| comp[v] == c).collect();
        if members.len() < 2 {
            continue;
        }
        let mut cycle_edges: Vec<&LockEdge> = edges
            .iter()
            .filter(|e| comp[index[e.from.as_str()]] == c && comp[index[e.to.as_str()]] == c)
            .collect();
        cycle_edges.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
        let witness = cycle_edges[0];
        let chains: Vec<String> = cycle_edges
            .iter()
            .map(|e| {
                format!("`{}` → `{}` at {}:{} (in `{}`)", e.from, e.to, e.file, e.line, e.func)
            })
            .collect();
        let locks: Vec<&str> = members.iter().map(|&v| names[v]).collect();
        findings.push(Finding {
            rule: RuleId::LockOrderInversion,
            file: witness.file.clone(),
            line: witness.line,
            col: witness.col,
            message: format!(
                "lock-order inversion among {{{}}}: {}",
                locks.join(", "),
                chains.join("; ")
            ),
        });
    }
    findings
}

/// Parses the documented lock hierarchy out of ARCHITECTURE.md: `A -> B`
/// lines between `<!-- lock-hierarchy:begin -->` and
/// `<!-- lock-hierarchy:end -->`. `None` when the markers are missing.
pub fn documented_edges(doc: &str) -> Option<BTreeSet<(String, String)>> {
    let begin = doc.find("<!-- lock-hierarchy:begin -->")?;
    let end = doc[begin..].find("<!-- lock-hierarchy:end -->")? + begin;
    let mut edges = BTreeSet::new();
    for line in doc[begin..end].lines() {
        let line = line.trim();
        if let Some((from, to)) = line.split_once("->") {
            let (from, to) = (from.trim(), to.trim());
            if !from.is_empty() && !to.is_empty() && !from.starts_with('<') {
                edges.insert((from.to_string(), to.to_string()));
            }
        }
    }
    Some(edges)
}

/// Renders the lock-order graph as deterministic Graphviz DOT.
pub fn to_dot(edges: &[LockEdge]) -> String {
    let mut sorted: Vec<&LockEdge> = edges.iter().collect();
    sorted.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
    let mut out = String::from("digraph lock_order {\n  rankdir=LR;\n");
    for e in sorted {
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{}:{}\"];\n",
            e.from, e.to, e.file, e.line
        ));
    }
    out.push_str("}\n");
    out
}
