//! Waiver directives: the inline escape hatch, with a required reason.
//!
//! A waiver is written in a **plain** (non-doc) comment:
//!
//! ```text
//! // lint: allow(panicking-call-in-lib) — length is validated two lines up
//! // lint: allow-file(unordered-iteration-on-answer-path) — keyed lookups only
//! ```
//!
//! `allow(...)` covers the comment's own line when it trails code, else the
//! next line that holds code; `allow-file(...)` covers the whole file.
//! Several rules may be waived at once (`allow(a, b)`), the separator may
//! be an em dash, `--`, `-` or `:`, and the reason is mandatory — a waiver
//! without a justification is a [`RuleId::MalformedWaiver`] finding, and a
//! waiver that suppresses nothing is [`RuleId::UnusedWaiver`]. Doc comments
//! never carry waivers, so documentation may quote the syntax freely.

use crate::rules::RuleId;

/// A parsed waiver directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// The rules this waiver suppresses.
    pub rules: Vec<RuleId>,
    /// The mandatory human justification.
    pub reason: String,
    /// `allow-file` (whole file) vs `allow` (one line).
    pub file_scope: bool,
}

/// Why a `lint:` directive failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaiverError {
    /// The directive verb was not `allow` / `allow-file`.
    UnknownDirective(String),
    /// The parenthesized rule list was missing or unbalanced.
    BadRuleList,
    /// A rule name that the registry does not know.
    UnknownRule(String),
    /// The named rule exists but may not be waived.
    Unwaivable(RuleId),
    /// Missing separator or empty reason after the rule list.
    MissingReason,
}

impl std::fmt::Display for WaiverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaiverError::UnknownDirective(d) => {
                write!(f, "unknown lint directive `{d}` (expected `allow` or `allow-file`)")
            }
            WaiverError::BadRuleList => {
                write!(f, "expected a parenthesized rule list after `allow`")
            }
            WaiverError::UnknownRule(r) => write!(f, "unknown rule id `{r}`"),
            WaiverError::Unwaivable(r) => write!(f, "rule `{}` cannot be waived", r.name()),
            WaiverError::MissingReason => {
                write!(f, "waiver needs a reason: `lint: allow(<rule>) — <why>`")
            }
        }
    }
}

/// Extracts the directive body from a comment, if the comment is a
/// non-doc comment starting with `lint:`. Returns `None` for ordinary
/// comments and all doc comments.
pub fn directive_body(comment_text: &str, is_doc: bool) -> Option<&str> {
    if is_doc {
        return None;
    }
    let body = comment_text
        .strip_prefix("//")
        .or_else(|| comment_text.strip_prefix("/*").map(|b| b.strip_suffix("*/").unwrap_or(b)))?;
    let body = body.trim_start();
    body.strip_prefix("lint:").map(str::trim)
}

/// Parses the body of a `lint:` directive (everything after `lint:`).
pub fn parse_directive(body: &str) -> Result<Waiver, WaiverError> {
    let body = body.trim();
    let (file_scope, rest) = if let Some(rest) = body.strip_prefix("allow-file") {
        (true, rest)
    } else if let Some(rest) = body.strip_prefix("allow") {
        (false, rest)
    } else {
        let verb: String = body.chars().take_while(|c| !c.is_whitespace() && *c != '(').collect();
        return Err(WaiverError::UnknownDirective(verb));
    };
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(').ok_or(WaiverError::BadRuleList)?;
    let close = rest.find(')').ok_or(WaiverError::BadRuleList)?;
    let (list, tail) = rest.split_at(close);
    let tail = &tail[1..]; // drop ')'

    let mut rules = Vec::new();
    for name in list.split(',') {
        let name = name.trim();
        if name.is_empty() {
            return Err(WaiverError::BadRuleList);
        }
        let rule =
            RuleId::from_name(name).ok_or_else(|| WaiverError::UnknownRule(name.to_string()))?;
        if !rule.waivable() {
            return Err(WaiverError::Unwaivable(rule));
        }
        rules.push(rule);
    }
    if rules.is_empty() {
        return Err(WaiverError::BadRuleList);
    }

    let reason = strip_separator(tail).ok_or(WaiverError::MissingReason)?;
    if reason.is_empty() {
        return Err(WaiverError::MissingReason);
    }
    Ok(Waiver { rules, reason: reason.to_string(), file_scope })
}

/// Strips one reason separator (`—`, `–`, `--`, `-`, `:`) and surrounding
/// whitespace; `None` if no separator is present.
fn strip_separator(tail: &str) -> Option<&str> {
    let tail = tail.trim_start();
    for sep in ["—", "–", "--", "-", ":"] {
        if let Some(reason) = tail.strip_prefix(sep) {
            return Some(reason.trim());
        }
    }
    None
}

/// Formats a waiver back into directive-body form (the inverse of
/// [`parse_directive`], used by the round-trip tests).
pub fn format_directive(waiver: &Waiver) -> String {
    let verb = if waiver.file_scope { "allow-file" } else { "allow" };
    let rules: Vec<&str> = waiver.rules.iter().map(|r| r.name()).collect();
    format!("{verb}({}) — {}", rules.join(", "), waiver.reason)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_canonical_form() {
        let w = parse_directive("allow(panicking-call-in-lib) — index bounded by len")
            .expect("canonical waiver parses");
        assert_eq!(w.rules, vec![RuleId::PanickingCallInLib]);
        assert_eq!(w.reason, "index bounded by len");
        assert!(!w.file_scope);
    }

    #[test]
    fn parses_multi_rule_and_ascii_separators() {
        for sep in ["—", "--", "-", ":"] {
            let body = format!(
                "allow-file(unordered-iteration-on-answer-path, panicking-call-in-lib) {sep} keyed lookups only"
            );
            let w = parse_directive(&body).expect("waiver with every separator parses");
            assert_eq!(w.rules.len(), 2);
            assert!(w.file_scope);
            assert_eq!(w.reason, "keyed lookups only");
        }
    }

    #[test]
    fn rejects_missing_reason_unknown_rule_and_unwaivable() {
        assert_eq!(
            parse_directive("allow(panicking-call-in-lib)"),
            Err(WaiverError::MissingReason)
        );
        assert_eq!(
            parse_directive("allow(panicking-call-in-lib) — "),
            Err(WaiverError::MissingReason)
        );
        assert!(matches!(parse_directive("allow(no-such) — x"), Err(WaiverError::UnknownRule(_))));
        assert_eq!(
            parse_directive("allow(unused-waiver) — x"),
            Err(WaiverError::Unwaivable(RuleId::UnusedWaiver))
        );
        assert!(matches!(
            parse_directive("alow(panicking-call-in-lib) — typo"),
            Err(WaiverError::UnknownDirective(_))
        ));
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        assert_eq!(directive_body("/// lint: allow(panicking-call-in-lib) — quoted", true), None);
        assert!(directive_body("// lint: allow(x) — y", false).is_some());
        assert!(directive_body("/* lint: allow(x) — y */", false).is_some());
        assert_eq!(directive_body("// plain comment", false), None);
    }

    #[test]
    fn format_parse_round_trips() {
        let w = Waiver {
            rules: vec![RuleId::PanickingCallInLib, RuleId::LockPoisonIdiom],
            reason: "proved unreachable by the guard above".to_string(),
            file_scope: false,
        };
        assert_eq!(parse_directive(&format_directive(&w)), Ok(w));
    }
}
