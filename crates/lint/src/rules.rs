//! The rule registry: identifiers, descriptions and path scoping.
//!
//! Each rule encodes one project invariant the test pyramid relies on but
//! nothing previously checked mechanically. Scoping is by workspace-relative
//! path (forward slashes): determinism rules only bite on the modules whose
//! determinism the equivalence tests pin, while safety rules apply
//! everywhere the analyzer looks.

/// Identifies one conformance rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleId {
    /// `unsafe` must be preceded by a `// SAFETY:` comment or a `# Safety`
    /// doc section.
    UndocumentedUnsafe,
    /// `.lock()` must recover from poisoning via
    /// `PoisonError::into_inner`, never `.unwrap()` / `.expect()`.
    LockPoisonIdiom,
    /// `Instant::now` / `SystemTime::now` are forbidden in deterministic
    /// planning and kernel code.
    WallClockInDeterministicPath,
    /// `unwrap()` / `expect()` / `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!` in non-test library code need a waiver.
    PanickingCallInLib,
    /// `HashMap` / `HashSet` on answer-producing paths need a waiver
    /// documenting order-independence.
    UnorderedIterationOnAnswerPath,
    /// Two lock acquisition orders form a cycle in the workspace
    /// lock-order graph (a deadlock waiting for the right interleaving).
    LockOrderInversion,
    /// A live lock guard is held across a blocking call (`Condvar::wait`,
    /// pool `run_scoped`/`spawn`, ticket `wait*`, channel `recv*`).
    LockHeldAcrossBlocking,
    /// Heap allocation inside a propagation-kernel hot loop; kernels must
    /// recycle `SpmvScratch` buffers.
    AllocInKernelHotLoop,
    /// A waiver that suppressed nothing (stale after a fix, or misplaced).
    UnusedWaiver,
    /// A `lint:` directive that failed to parse (typo, unknown rule id,
    /// missing reason).
    MalformedWaiver,
}

/// Every rule the analyzer knows, in reporting order.
pub const ALL_RULES: [RuleId; 10] = [
    RuleId::UndocumentedUnsafe,
    RuleId::LockPoisonIdiom,
    RuleId::WallClockInDeterministicPath,
    RuleId::PanickingCallInLib,
    RuleId::UnorderedIterationOnAnswerPath,
    RuleId::LockOrderInversion,
    RuleId::LockHeldAcrossBlocking,
    RuleId::AllocInKernelHotLoop,
    RuleId::UnusedWaiver,
    RuleId::MalformedWaiver,
];

impl RuleId {
    /// The stable kebab-case identifier used in diagnostics and waivers.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::UndocumentedUnsafe => "undocumented-unsafe",
            RuleId::LockPoisonIdiom => "lock-poison-idiom",
            RuleId::WallClockInDeterministicPath => "wall-clock-in-deterministic-path",
            RuleId::PanickingCallInLib => "panicking-call-in-lib",
            RuleId::UnorderedIterationOnAnswerPath => "unordered-iteration-on-answer-path",
            RuleId::LockOrderInversion => "lock-order-inversion",
            RuleId::LockHeldAcrossBlocking => "lock-held-across-blocking",
            RuleId::AllocInKernelHotLoop => "alloc-in-kernel-hot-loop",
            RuleId::UnusedWaiver => "unused-waiver",
            RuleId::MalformedWaiver => "malformed-waiver",
        }
    }

    /// Parses a kebab-case rule name back to its id.
    pub fn from_name(name: &str) -> Option<RuleId> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// One-line rationale shown by `--list-rules` and in ARCHITECTURE.md.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::UndocumentedUnsafe => {
                "every `unsafe` block/fn/impl must be justified by a preceding \
                 `// SAFETY:` comment or `# Safety` doc section"
            }
            RuleId::LockPoisonIdiom => {
                "`.lock()` must recover from poisoning via \
                 `unwrap_or_else(PoisonError::into_inner)`; `.unwrap()`/`.expect()` \
                 would let one panicked worker wedge the whole serving tier"
            }
            RuleId::WallClockInDeterministicPath => {
                "`Instant::now`/`SystemTime::now` are forbidden where plans and \
                 kernels must be a pure function of their inputs; metrics-capture \
                 sites carry explicit waivers"
            }
            RuleId::PanickingCallInLib => {
                "`unwrap()`/`expect()`/`panic!`/`unreachable!` in non-test library \
                 code either becomes error propagation or carries a waiver stating \
                 why the panic is unreachable or is the documented contract"
            }
            RuleId::UnorderedIterationOnAnswerPath => {
                "`HashMap`/`HashSet` in answer-producing modules need a waiver \
                 documenting why iteration order cannot reach an answer"
            }
            RuleId::LockOrderInversion => {
                "the workspace lock-order graph (guard-liveness dataflow over \
                 the conservative call graph) must stay acyclic; a cycle is a \
                 deadlock waiting for the right thread interleaving"
            }
            RuleId::LockHeldAcrossBlocking => {
                "a lock guard held across `Condvar::wait`, pool \
                 `run_scoped`/`spawn`, ticket `wait*` or channel `recv*` stalls \
                 every thread contending on that lock; drop the guard first or \
                 waive with the protocol that makes it safe"
            }
            RuleId::AllocInKernelHotLoop => {
                "`Vec::new`/`vec!`/`.push`/`.to_vec`/`.collect` inside a \
                 propagation-kernel loop reintroduces the allocator into the \
                 hot path; kernels recycle `SpmvScratch` buffers instead"
            }
            RuleId::UnusedWaiver => {
                "a waiver that no longer suppresses any finding must be deleted \
                 so waivers stay a trustworthy audit trail"
            }
            RuleId::MalformedWaiver => {
                "a `lint:` directive that does not parse (unknown rule, missing \
                 reason) is an error, not a silent no-op"
            }
        }
    }

    /// Whether a waiver may suppress this rule. The two waiver-hygiene
    /// rules are themselves unwaivable.
    pub fn waivable(self) -> bool {
        !matches!(self, RuleId::UnusedWaiver | RuleId::MalformedWaiver)
    }

    /// Whether this rule inspects the file at `path` (workspace-relative,
    /// forward slashes). Test code is additionally excluded token-by-token
    /// via `#[cfg(test)]` region tracking, not here.
    pub fn applies_to(self, path: &str) -> bool {
        match self {
            // Safety and waiver-hygiene rules run on everything scanned.
            RuleId::UndocumentedUnsafe
            | RuleId::LockPoisonIdiom
            | RuleId::UnusedWaiver
            | RuleId::MalformedWaiver => true,
            // Plan decisions and propagation kernels must be pure functions
            // of their inputs: these are the modules whose bit-for-bit
            // equivalence the tier-1 tests pin across strategies and
            // batch/thread configurations.
            RuleId::WallClockInDeterministicPath => {
                path == "crates/core/src/engine/pipeline.rs"
                    || path == "crates/core/src/engine/plan.rs"
                    || path.starts_with("crates/markov/src/")
            }
            // Library code only: the bench harness is an experiment driver
            // where a panic on a bad configuration is the desired behavior.
            RuleId::PanickingCallInLib => !path.starts_with("crates/bench/"),
            // The semantic lock rules run wherever the symbol table does.
            RuleId::LockOrderInversion | RuleId::LockHeldAcrossBlocking => true,
            // The propagation kernels are the only code with a measured
            // allocation budget (the `SpmvScratch` recycling contract).
            RuleId::AllocInKernelHotLoop => path == "crates/markov/src/kernels.rs",
            // Modules that produce or maintain query answers; everything
            // downstream of these is pinned bit-for-bit by the equivalence
            // tests, so iteration order must never reach a result.
            RuleId::UnorderedIterationOnAnswerPath => {
                path.starts_with("crates/core/src/engine/")
                    || path == "crates/core/src/ranking.rs"
                    || path == "crates/core/src/threshold.rs"
                    || path == "crates/core/src/streaming.rs"
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for rule in ALL_RULES {
            assert_eq!(RuleId::from_name(rule.name()), Some(rule));
        }
        assert_eq!(RuleId::from_name("no-such-rule"), None);
    }

    #[test]
    fn scoping_matches_the_issue() {
        let wall = RuleId::WallClockInDeterministicPath;
        assert!(wall.applies_to("crates/core/src/engine/plan.rs"));
        assert!(wall.applies_to("crates/markov/src/kernels.rs"));
        assert!(!wall.applies_to("crates/core/src/serving.rs"));
        assert!(!wall.applies_to("crates/bench/src/lib.rs"));

        let panic = RuleId::PanickingCallInLib;
        assert!(panic.applies_to("crates/core/src/database.rs"));
        assert!(!panic.applies_to("crates/bench/src/experiments/fig8.rs"));

        let unordered = RuleId::UnorderedIterationOnAnswerPath;
        assert!(unordered.applies_to("crates/core/src/engine/cache.rs"));
        assert!(!unordered.applies_to("crates/data/src/csv.rs"));
    }
}
