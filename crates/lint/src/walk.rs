//! Workspace discovery: which `.rs` files the analyzer inspects.
//!
//! Scanned: the facade crate's `src/` and every `crates/*/src/` tree,
//! including `ust-lint` itself (the analyzer is self-hosting).
//!
//! Excluded by design:
//! * `crates/compat/` — vendored API stand-ins for third-party crates
//!   (`rand`, `proptest`, `criterion`); project conventions do not govern
//!   foreign API surfaces, and the stand-ins are swapped for the real
//!   crates once the build environment has network access;
//! * `tests/`, `benches/`, `examples/` trees — integration tests and
//!   examples are test code for every rule, and fixture files under
//!   `crates/lint/tests/fixtures/` contain deliberate violations;
//! * `target/` and anything outside the workspace.

use std::path::{Path, PathBuf};

/// Collects the workspace-relative paths of every source file to analyze,
/// sorted for deterministic reports. I/O errors name the path they hit.
pub fn workspace_files(root: &Path) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs(&facade, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in read_dir_sorted(&crates)? {
            if entry.file_name().and_then(|n| n.to_str()) == Some("compat") {
                continue;
            }
            let src = entry.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let mut rel: Vec<String> = files
        .iter()
        .filter_map(|f| f.strip_prefix(root).ok())
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    rel.sort();
    Ok(rel)
}

/// Recursively collects `.rs` files under `dir`. Build output (`target/`)
/// and symlinked directories are skipped: `target/` holds generated and
/// vendored sources that are not workspace code, and following directory
/// symlinks risks duplicate reports or cycles (`a/link -> a`).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in read_dir_sorted(dir)? {
        if entry.is_dir() {
            if entry.file_name().and_then(|n| n.to_str()) == Some("target") {
                continue;
            }
            let is_symlink = std::fs::symlink_metadata(&entry)
                .map(|m| m.file_type().is_symlink())
                .unwrap_or(false);
            if is_symlink {
                continue;
            }
            collect_rs(&entry, out)?;
        } else if entry.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(entry);
        }
    }
    Ok(())
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let iter = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    let mut entries = Vec::new();
    for entry in iter {
        let entry = entry.map_err(|e| format!("cannot read entry in {}: {e}", dir.display()))?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]` — the analyzer's default root.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a scratch workspace with a nested `target/` directory and (on
    /// unix) a directory symlink, and pins that `collect_rs` skips both.
    #[test]
    fn collect_skips_target_and_symlinked_dirs() {
        let scratch = std::env::temp_dir().join(format!("ust-lint-walk-{}", std::process::id()));
        let src = scratch.join("src");
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(src.join("inner")).unwrap();
        std::fs::create_dir_all(src.join("target").join("debug")).unwrap();
        std::fs::write(src.join("lib.rs"), "pub fn a() {}\n").unwrap();
        std::fs::write(src.join("inner").join("mod.rs"), "pub fn b() {}\n").unwrap();
        std::fs::write(
            src.join("target").join("debug").join("generated.rs"),
            "pub fn generated() {}\n",
        )
        .unwrap();
        #[cfg(unix)]
        std::os::unix::fs::symlink(&src, src.join("inner").join("loop")).unwrap();

        let mut files = Vec::new();
        collect_rs(&src, &mut files).unwrap();
        let names: Vec<String> = files
            .iter()
            .map(|p| p.strip_prefix(&src).unwrap().to_string_lossy().replace('\\', "/"))
            .collect();
        assert_eq!(names, ["inner/mod.rs", "lib.rs"]);

        std::fs::remove_dir_all(&scratch).unwrap();
    }
}
