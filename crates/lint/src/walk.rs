//! Workspace discovery: which `.rs` files the analyzer inspects.
//!
//! Scanned: the facade crate's `src/` and every `crates/*/src/` tree,
//! including `ust-lint` itself (the analyzer is self-hosting).
//!
//! Excluded by design:
//! * `crates/compat/` — vendored API stand-ins for third-party crates
//!   (`rand`, `proptest`, `criterion`); project conventions do not govern
//!   foreign API surfaces, and the stand-ins are swapped for the real
//!   crates once the build environment has network access;
//! * `tests/`, `benches/`, `examples/` trees — integration tests and
//!   examples are test code for every rule, and fixture files under
//!   `crates/lint/tests/fixtures/` contain deliberate violations;
//! * `target/` and anything outside the workspace.

use std::path::{Path, PathBuf};

/// Collects the workspace-relative paths of every source file to analyze,
/// sorted for deterministic reports. I/O errors name the path they hit.
pub fn workspace_files(root: &Path) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs(&facade, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in read_dir_sorted(&crates)? {
            if entry.file_name().and_then(|n| n.to_str()) == Some("compat") {
                continue;
            }
            let src = entry.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let mut rel: Vec<String> = files
        .iter()
        .filter_map(|f| f.strip_prefix(root).ok())
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    rel.sort();
    Ok(rel)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in read_dir_sorted(dir)? {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(entry);
        }
    }
    Ok(())
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let iter = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    let mut entries = Vec::new();
    for entry in iter {
        let entry = entry.map_err(|e| format!("cannot read entry in {}: {e}", dir.display()))?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]` — the analyzer's default root.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
