//! The workspace symbol table: structs and their (lock-typed) fields,
//! functions keyed for call resolution, statics and type aliases.
//!
//! Lock identity is resolved to a **canonical field path**: every
//! `Mutex<T>` / `RwLock<T>` type is keyed by its normalized type text, and
//! displayed as the struct field that owns it (`Metrics.inner`,
//! `QueryProcessor.cache`, `SHARED_POOL`). When several fields share a lock
//! type they are merged into one node — conservative for deadlock
//! detection, since a `&Mutex<T>` parameter is almost always a borrow of
//! the owning field. Owned fields win the naming contest over `&`-typed
//! borrows so graphs read in terms of the owning struct.

use std::collections::BTreeMap;

use crate::parse::{FnItem, Item, ParsedFile};

/// A struct's named fields, `field name → raw type text`.
#[derive(Debug, Default)]
pub struct StructInfo {
    /// Field name → space-joined type text.
    pub fields: BTreeMap<String, String>,
}

/// One function in the workspace.
pub struct FnRef<'a> {
    /// Index into [`Workspace::paths`].
    pub file: usize,
    /// The parsed item.
    pub item: &'a FnItem,
}

/// Symbols for a whole workspace (or a single file, for fixtures).
pub struct Workspace<'a> {
    /// Workspace-relative paths, indexed by file id.
    pub paths: Vec<String>,
    /// Every parsed `fn`, indexed by function id.
    pub fns: Vec<FnRef<'a>>,
    /// Struct name → fields.
    pub structs: BTreeMap<String, StructInfo>,
    /// Static name → raw type text.
    pub statics: BTreeMap<String, String>,
    /// Type alias name → raw aliased type text.
    pub aliases: BTreeMap<String, String>,
    /// `(impl type, method name)` → function id.
    pub methods: BTreeMap<(String, String), usize>,
    /// Free function name → function ids (workspace-wide).
    pub free_fns: BTreeMap<String, Vec<usize>>,
    /// `(file id, free fn name)` → function id.
    pub free_in_file: BTreeMap<(usize, String), usize>,
    /// Module name (file stem; `mod.rs` → parent dir) → file id.
    pub modules: BTreeMap<String, usize>,
    /// Normalized lock type (`Mutex<T>` / `RwLock<T>`) → canonical display.
    pub lock_names: BTreeMap<String, String>,
}

impl<'a> Workspace<'a> {
    /// Builds the symbol table over `(path, parsed)` pairs.
    pub fn build(files: &[(String, &'a ParsedFile)]) -> Workspace<'a> {
        let mut ws = Workspace {
            paths: files.iter().map(|(p, _)| p.clone()).collect(),
            fns: Vec::new(),
            structs: BTreeMap::new(),
            statics: BTreeMap::new(),
            aliases: BTreeMap::new(),
            methods: BTreeMap::new(),
            free_fns: BTreeMap::new(),
            free_in_file: BTreeMap::new(),
            modules: BTreeMap::new(),
            lock_names: BTreeMap::new(),
        };
        for (file, (path, parsed)) in files.iter().enumerate() {
            ws.modules.entry(module_name(path)).or_insert(file);
            for item in &parsed.items {
                match item {
                    Item::Struct(s) => {
                        let info = ws.structs.entry(s.name.clone()).or_default();
                        for f in &s.fields {
                            info.fields.entry(f.name.clone()).or_insert_with(|| f.ty.clone());
                        }
                    }
                    Item::Static(s) => {
                        ws.statics.entry(s.name.clone()).or_insert_with(|| s.ty.clone());
                    }
                    Item::TypeAlias(t) => {
                        ws.aliases.entry(t.name.clone()).or_insert_with(|| t.ty.clone());
                    }
                    Item::Fn(f) => {
                        let id = ws.fns.len();
                        ws.fns.push(FnRef { file, item: f });
                        match &f.self_ty {
                            Some(ty) => {
                                ws.methods.entry((ty.clone(), f.name.clone())).or_insert(id);
                            }
                            None => {
                                ws.free_fns.entry(f.name.clone()).or_default().push(id);
                                ws.free_in_file.entry((file, f.name.clone())).or_insert(id);
                            }
                        }
                    }
                }
            }
        }
        ws.name_locks();
        ws
    }

    /// Chooses the canonical display name for every lock type seen in a
    /// struct field or static: owned fields first, then `&`-typed borrows,
    /// lexicographic within a class — deterministic across runs.
    fn name_locks(&mut self) {
        let mut candidates: BTreeMap<String, Vec<(bool, String)>> = BTreeMap::new();
        for (sname, info) in &self.structs {
            for (fname, raw) in &info.fields {
                let norm = normalize_type(raw, Some(sname));
                if let Some(lock) = self.lock_key(&norm) {
                    let is_ref = raw.trim_start().starts_with('&');
                    candidates.entry(lock).or_default().push((is_ref, format!("{sname}.{fname}")));
                }
            }
        }
        for (name, raw) in &self.statics {
            let norm = normalize_type(raw, None);
            if let Some(lock) = self.lock_key(&norm) {
                candidates.entry(lock).or_default().push((false, name.clone()));
            }
        }
        for (lock, mut names) in candidates {
            names.sort();
            if let Some((_, display)) = names.first() {
                self.lock_names.insert(lock, display.clone());
            }
        }
    }

    /// The identity key of the lock inside a normalized type, if any:
    /// `Mutex<...>`/`RwLock<...>` with the payload collapsed to its base
    /// workspace struct (resolving aliases) so `Mutex<BackwardFieldCache>`,
    /// `Mutex<FieldCache<F>>` and `Mutex<Self>` inside the impl are one
    /// node. Payloads naming no workspace struct key by their full text.
    pub fn lock_key(&self, norm_ty: &str) -> Option<String> {
        let extracted = lock_inner(norm_ty)?;
        let open = extracted.find('<')?;
        let marker = &extracted[..open];
        let payload = &extracted[open + 1..extracted.len() - 1];
        match self.struct_in_type(payload) {
            Some(s) => Some(format!("{marker}<{s}>")),
            None => Some(extracted),
        }
    }

    /// Canonical display for a normalized lock type (falls back to the
    /// type itself when no field owns it).
    pub fn lock_display(&self, lock_ty: &str) -> String {
        self.lock_names.get(lock_ty).cloned().unwrap_or_else(|| lock_ty.to_string())
    }

    /// The first identifier in `norm_ty` that names a workspace struct,
    /// resolving type aliases up to a small depth. This is how receiver
    /// types (`Arc<Metrics>`, `&'a ShardQueue`) map back to structs.
    pub fn struct_in_type(&self, norm_ty: &str) -> Option<&str> {
        self.struct_in_type_depth(norm_ty, 4)
    }

    fn struct_in_type_depth(&self, norm_ty: &str, depth: usize) -> Option<&str> {
        for ident in idents_of(norm_ty) {
            if self.structs.contains_key(ident) {
                return self.structs.get_key_value(ident).map(|(k, _)| k.as_str());
            }
            if depth > 0 {
                if let Some(aliased) = self.aliases.get(ident) {
                    let norm = normalize_type(aliased, None);
                    if let Some(s) = self.struct_in_type_depth(&norm, depth - 1) {
                        // Re-borrow through self to satisfy the borrow checker.
                        return self.structs.get_key_value(s).map(|(k, _)| k.as_str());
                    }
                }
            }
        }
        None
    }

    /// If `struct.field` holds a lock, its canonical display name.
    pub fn field_lock(&self, struct_name: &str, field: &str) -> Option<String> {
        let raw = self.structs.get(struct_name)?.fields.get(field)?;
        let norm = normalize_type(raw, Some(struct_name));
        self.lock_key(&norm).map(|l| self.lock_display(&l))
    }

    /// If the type text contains a lock, its canonical display name.
    pub fn lock_in_type(&self, raw_ty: &str, self_ty: Option<&str>) -> Option<String> {
        let norm = normalize_type(raw_ty, self_ty);
        self.lock_key(&norm).map(|l| self.lock_display(&l))
    }
}

/// The module a file contributes for `module::fn(...)` resolution: its
/// stem, or the parent directory for `mod.rs`.
pub fn module_name(path: &str) -> String {
    let parts: Vec<&str> = path.rsplitn(3, '/').collect();
    let stem = parts[0].strip_suffix(".rs").unwrap_or(parts[0]);
    if stem == "mod" && parts.len() > 1 {
        parts[1].to_string()
    } else {
        stem.to_string()
    }
}

/// Normalizes a space-joined type text: drops references, lifetimes,
/// `mut`/`dyn`, collapses `path::To::Type` to `Type` and substitutes
/// `Self`, producing a compact comparable string (`Arc<Mutex<Inner>>`).
pub fn normalize_type(raw: &str, self_ty: Option<&str>) -> String {
    let toks: Vec<&str> = raw.split_whitespace().collect();
    let mut kept: Vec<&str> = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        let t = toks[i];
        if t == ":" && i + 1 < toks.len() && toks[i + 1] == ":" {
            // Path separator: the segment before it was a prefix.
            if kept.last().is_some_and(|k| is_ident_like(k)) {
                kept.pop();
            }
            i += 2;
            continue;
        }
        if t == "&" || t == "mut" || t == "dyn" || t.starts_with('\'') {
            i += 1;
            continue;
        }
        kept.push(t);
        i += 1;
    }
    let mut out = String::new();
    for t in kept {
        if t == "Self" {
            out.push_str(self_ty.unwrap_or("Self"));
        } else {
            out.push_str(t);
        }
    }
    out
}

/// Extracts the first balanced `Mutex<...>` / `RwLock<...>` from a
/// normalized type text.
pub fn lock_inner(norm: &str) -> Option<String> {
    for marker in ["Mutex<", "RwLock<"] {
        let mut from = 0;
        while let Some(rel) = norm[from..].find(marker) {
            let at = from + rel;
            // Reject mid-identifier matches like `FakeMutex<`.
            let preceded = norm[..at].chars().next_back().is_some_and(is_ident_char);
            if preceded {
                from = at + marker.len();
                continue;
            }
            let open = at + marker.len() - 1;
            let mut depth = 0i64;
            for (off, c) in norm[open..].char_indices() {
                match c {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(norm[at..=open + off].to_string());
                        }
                    }
                    _ => {}
                }
            }
            return None; // unbalanced
        }
    }
    None
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_ident_like(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(is_ident_char)
        && !s.chars().next().is_some_and(|c| c.is_ascii_digit())
}

/// Iterates the identifier runs of a normalized type text.
fn idents_of(norm: &str) -> impl Iterator<Item = &str> {
    norm.split(|c: char| !is_ident_char(c))
        .filter(|s| !s.is_empty() && !s.chars().next().is_some_and(|c| c.is_ascii_digit()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_source;

    #[test]
    fn normalizes_paths_refs_and_self() {
        assert_eq!(normalize_type("& 'a std : : sync : : Mutex < Inner >", None), "Mutex<Inner>");
        assert_eq!(
            normalize_type("Arc < Mutex < cache : : BackCache > >", None),
            "Arc<Mutex<BackCache>>"
        );
        assert_eq!(normalize_type("& Mutex < Self >", Some("FieldCache")), "Mutex<FieldCache>");
    }

    #[test]
    fn lock_inner_finds_balanced_locks_only() {
        assert_eq!(lock_inner("Arc<Mutex<Vec<u32>>>").as_deref(), Some("Mutex<Vec<u32>>"));
        assert_eq!(lock_inner("RwLock<Db>").as_deref(), Some("RwLock<Db>"));
        assert_eq!(lock_inner("MutexGuard<u32>"), None);
        assert_eq!(lock_inner("FakeMutex<u32>"), None);
        assert_eq!(lock_inner("Condvar"), None);
    }

    #[test]
    fn canonical_names_prefer_owned_fields() {
        let parsed = parse_source(
            "pub struct Owner { pub cache: std::sync::Mutex<Cache> }\n\
             pub struct Borrower<'a> { pub cache: &'a std::sync::Mutex<Cache> }\n",
        );
        let files = vec![("crates/x/src/lib.rs".to_string(), &parsed)];
        let ws = Workspace::build(&files);
        assert_eq!(ws.lock_display("Mutex<Cache>"), "Owner.cache");
    }

    #[test]
    fn module_names_resolve_mod_rs_to_dir() {
        assert_eq!(module_name("crates/core/src/engine/plan.rs"), "plan");
        assert_eq!(module_name("crates/core/src/engine/mod.rs"), "engine");
        assert_eq!(module_name("src/lib.rs"), "lib");
    }
}
