//! Property tests for the item-level parser: on *arbitrary* token soup it
//! must never panic, and every token it keeps in a statement tree must be
//! present in the lexer's stream at exactly the same position — parsing
//! reorganizes tokens, it never invents or relocates them.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ust_lint::lexer::lex;
use ust_lint::parse::{parse_source, Block, Elem, Item};

/// Raw material for generated sources: keywords that drive the parser's
/// item and block machinery, idents, literals, and every punct it treats
/// specially — including unbalanced braces and stray separators.
const PIECES: [&str; 40] = [
    "fn", "struct", "impl", "let", "for", "while", "loop", "match", "if", "else", "unsafe",
    "static", "type", "mod", "trait", "enum", "pub", "where", "self", "Self", "alpha", "beta",
    "Widget", "x", "{", "}", "(", ")", "[", "]", ";", ":", ",", ".", "->", "::", "<", ">",
    "\"lit\"", "'a",
];

/// A generated source: sometimes plausible items, sometimes pure soup,
/// sometimes pathological nesting.
fn generate(rng: &mut StdRng) -> String {
    match rng.random_range(0u8..4) {
        // Pure token soup, any order, unbalanced everything.
        0 => {
            let len = rng.random_range(0usize..200);
            let mut out = String::new();
            for _ in 0..len {
                out.push_str(PIECES[rng.random_range(0usize..PIECES.len())]);
                out.push(if rng.random_range(0u8..8) == 0 { '\n' } else { ' ' });
            }
            out
        }
        // Plausible item skeletons with soup bodies.
        1 => {
            let mut out = String::new();
            for i in 0..rng.random_range(1usize..6) {
                out.push_str(&format!("fn f{i}(a: u32, b: &Widget) -> u32 {{\n"));
                for _ in 0..rng.random_range(0usize..30) {
                    out.push_str(PIECES[rng.random_range(0usize..PIECES.len())]);
                    out.push(' ');
                }
                out.push_str("\n}\n");
            }
            out
        }
        // Deep homogeneous nesting (past MAX_BLOCK_DEPTH).
        2 => {
            let depth = rng.random_range(1usize..200);
            let mut out = String::from("fn deep() ");
            for _ in 0..depth {
                out.push_str("{ if x ");
            }
            out.push_str("{ x ; }");
            for _ in 0..depth {
                out.push('}');
            }
            out
        }
        // Item streams with structs, impls and statements.
        _ => {
            let n = rng.random_range(1usize..5);
            let mut out = String::new();
            for i in 0..n {
                out.push_str(&format!(
                    "struct S{i} {{ inner: std::sync::Mutex<u{w}> }}\n\
                     impl S{i} {{ fn get(&self) -> u{w} {{ \
                     let g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner); \
                     *g }} }}\n",
                    w = if rng.random_range(0u8..2) == 0 { 32 } else { 64 },
                ));
            }
            out
        }
    }
}

/// Collects `(line, col, text)` of every token in a statement tree.
fn tree_tokens(block: &Block, out: &mut Vec<(u32, u32, String)>) {
    for stmt in &block.stmts {
        for elem in &stmt.elems {
            match elem {
                Elem::Tok(t) => out.push((t.line, t.col, t.text.clone())),
                Elem::Block(b) => tree_tokens(b, out),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser is total (no panic on any input) and span-preserving:
    /// every token of every parsed function body exists in the lexer's
    /// stream at the same `(line, col)` with the same text.
    #[test]
    fn parser_is_total_and_span_preserving(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let src = generate(&mut rng);
        let parsed = parse_source(&src);

        let lexed = lex(&src);
        let stream: std::collections::BTreeSet<(u32, u32, &str)> =
            lexed.tokens.iter().map(|t| (t.line, t.col, t.text.as_str())).collect();
        let mut kept = Vec::new();
        for item in &parsed.items {
            if let Item::Fn(f) = item {
                tree_tokens(&f.body, &mut kept);
            }
        }
        for (line, col, text) in &kept {
            prop_assert!(
                stream.contains(&(*line, *col, text.as_str())),
                "parse tree token {text:?} at {line}:{col} is not in the lex stream\nsrc:\n{src}"
            );
        }
    }
}
