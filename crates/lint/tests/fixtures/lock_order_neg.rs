//! Negative fixture: both functions respect the same acquisition order
//! (`Ledger.accounts` before `Journal.entries`), so the lock-order graph
//! has one edge and no cycle.

use std::sync::Mutex;

pub struct Ledger {
    pub accounts: Mutex<u32>,
}

pub struct Journal {
    pub entries: Mutex<u64>,
}

pub fn forward(ledger: &Ledger, journal: &Journal) -> u64 {
    let accounts = ledger.accounts.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let entries = journal.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    u64::from(*accounts) + *entries
}

pub fn audit(ledger: &Ledger, journal: &Journal) -> u64 {
    let accounts = ledger.accounts.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let entries = journal.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *entries - u64::from(*accounts)
}
