//! Positive fixture: hash containers on an answer-producing path.

use std::collections::{HashMap, HashSet};

pub fn tally(ids: &[u64]) -> Vec<(u64, usize)> {
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for &id in ids {
        *counts.entry(id).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

pub fn distinct(ids: &[u64]) -> usize {
    ids.iter().collect::<HashSet<_>>().len()
}
