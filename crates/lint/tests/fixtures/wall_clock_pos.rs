//! Positive fixture: a wall-clock read inside deterministic planning code.

use std::time::{Instant, SystemTime};

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn epoch() -> SystemTime {
    SystemTime::now()
}
