//! Positive fixture: three allocation sites inside loop bodies of kernel
//! code (`.push`, `vec!`, `.to_vec`). The loop-free `Vec::new` at the top
//! is deliberately *not* a finding — the rule bites inside loops only.

pub fn scatter(rows: &[u32], out: &mut Vec<u32>, sink: &mut Vec<u32>) {
    let mut staging = Vec::new();
    staging.extend_from_slice(rows);
    for &r in rows {
        out.push(r);
    }
    for &r in &staging {
        let doubled = vec![r; 2];
        sink.extend_from_slice(&doubled.to_vec());
    }
}
