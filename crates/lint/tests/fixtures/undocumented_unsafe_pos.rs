//! Positive fixture: an `unsafe` block with no SAFETY comment in reach.

pub fn peel(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}
