//! Negative fixture: the hot loop writes through pre-sized scratch slices
//! — no allocation inside any loop body.

pub fn scatter_into(rows: &[u32], scratch: &mut [u32]) -> usize {
    let mut n = 0usize;
    for &r in rows {
        scratch[n] = r;
        n += 1;
    }
    n
}
