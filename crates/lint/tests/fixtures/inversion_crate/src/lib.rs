//! A seeded lock-order inversion, kept as a standalone mini-workspace:
//! CI runs `ust-lint --root` on this directory and asserts the analyzer
//! rejects it — the end-to-end proof that a reversed acquisition cannot
//! land silently.

use std::sync::Mutex;

pub struct Router {
    pub table: Mutex<u32>,
}

pub struct Spool {
    pub queue: Mutex<u64>,
}

pub fn route(router: &Router, spool: &Spool) -> u64 {
    let table = router.table.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let queue = spool.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    u64::from(*table) + *queue
}

pub fn flush(router: &Router, spool: &Spool) -> u64 {
    let queue = spool.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let table = router.table.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *queue + u64::from(*table)
}
