//! Negative fixture: the unrelated guard is scoped to end before the
//! wait, and the guard the wait consumes (and re-acquires) is the condvar
//! protocol itself — no guard is held *across* the blocking call.

use std::sync::{Condvar, Mutex};

pub struct Gate {
    pub slots: Mutex<usize>,
    pub ready: Condvar,
}

pub struct Stats {
    pub totals: Mutex<u64>,
}

impl Gate {
    pub fn drain(&self, stats: &Stats) {
        {
            let mut totals =
                stats.totals.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            *totals += 1;
        }
        let mut slots = self.slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while *slots > 0 {
            slots = self.ready.wait(slots).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}
