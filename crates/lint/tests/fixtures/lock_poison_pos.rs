//! Positive fixture: `.lock().unwrap()` propagates a poisoned mutex as a
//! panic, wedging every later caller of the lock.

use std::sync::Mutex;

pub fn drain(m: &Mutex<Vec<u64>>) -> usize {
    let guard = m.lock().unwrap();
    guard.len()
}

pub fn peek(m: &Mutex<Vec<u64>>) -> usize {
    m.lock().expect("not poisoned").len()
}
