//! Negative fixture: the project's lock-poison idiom — recover the guard
//! with `PoisonError::into_inner` instead of panicking.

use std::sync::{Mutex, PoisonError};

pub fn drain(m: &Mutex<Vec<u64>>) -> usize {
    let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
    guard.len()
}
