//! Negative fixture: ordered containers produce deterministic answers
//! without any waiver.

use std::collections::BTreeMap;

pub fn tally(ids: &[u64]) -> Vec<(u64, usize)> {
    let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
    for &id in ids {
        *counts.entry(id).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

pub fn distinct(ids: &[u64]) -> usize {
    let mut sorted = ids.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}
