//! Positive fixture: every way library code can panic on a bad state.

pub fn lookup(v: &[u64], i: usize) -> u64 {
    *v.get(i).unwrap()
}

pub fn named(v: &[u64]) -> u64 {
    *v.first().expect("non-empty")
}

pub fn dispatch(mode: u8) -> u64 {
    match mode {
        0 => 1,
        1 => panic!("mode one is not wired up"),
        2 => todo!(),
        3 => unimplemented!(),
        _ => unreachable!("callers pass 0..=3"),
    }
}
