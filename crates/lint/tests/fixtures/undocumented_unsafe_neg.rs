//! Negative fixture: every `unsafe` site is justified — the `unsafe fn` by
//! its safety doc section, the inner block by a safety comment.

/// Reads the first byte without a bounds check.
///
/// # Safety
///
/// The caller guarantees `v` is non-empty.
pub unsafe fn first(v: &[u8]) -> u8 {
    // SAFETY: the caller guarantees `v` is non-empty (see `# Safety`).
    unsafe { *v.as_ptr() }
}
