//! Positive fixture: two functions acquire the same two locks in opposite
//! orders — a deadlock waiting for the right interleaving.

use std::sync::Mutex;

pub struct Ledger {
    pub accounts: Mutex<u32>,
}

pub struct Journal {
    pub entries: Mutex<u64>,
}

pub fn forward(ledger: &Ledger, journal: &Journal) -> u64 {
    let accounts = ledger.accounts.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let entries = journal.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    u64::from(*accounts) + *entries
}

pub fn backward(ledger: &Ledger, journal: &Journal) -> u64 {
    let entries = journal.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let accounts = ledger.accounts.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *entries + u64::from(*accounts)
}
