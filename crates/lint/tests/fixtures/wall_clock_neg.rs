//! Negative fixture: the only wall-clock mentions are inert — inside doc
//! text (`Instant::now()`), a string literal, and this comment.

/// Explains the ban on `Instant::now()` and `SystemTime::now()` here.
pub fn describe() -> &'static str {
    // Instant::now() in a comment must not fire either.
    "call Instant::now() outside the planner and pass the timestamp in"
}

pub fn elapsed_steps(t_start: u32, t_end: u32) -> u32 {
    t_end.saturating_sub(t_start)
}
