//! Positive fixture: a guard of one lock stays live across a condvar wait
//! on a *different* lock — every thread contending on `Stats.totals`
//! convoys behind the wait. The guard actually passed to the wait is the
//! condvar protocol and is exempt.

use std::sync::{Condvar, Mutex};

pub struct Gate {
    pub slots: Mutex<usize>,
    pub ready: Condvar,
}

pub struct Stats {
    pub totals: Mutex<u64>,
}

impl Gate {
    pub fn drain(&self, stats: &Stats) {
        let mut totals = stats.totals.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut slots = self.slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while *slots > 0 {
            slots = self.ready.wait(slots).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        *totals += 1;
    }
}
