//! Negative fixture: error propagation, a justified waiver, and test code
//! — none of which should fire `panicking-call-in-lib`.

pub fn lookup(v: &[u64], i: usize) -> Option<u64> {
    v.get(i).copied()
}

pub fn head(v: &[u64]) -> u64 {
    // lint: allow(panicking-call-in-lib) — fixture invariant: callers pass
    // a non-empty slice, checked at the call site.
    v.first().copied().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::lookup(&[7], 0).unwrap(), 7);
        assert!(std::panic::catch_unwind(|| panic!("test code may panic")).is_err());
    }
}
