//! Waiver hygiene and robustness: stale and malformed waivers are findings
//! themselves, doc comments never carry waivers, and property tests pin
//! that trigger text hidden in comments or string literals can never fire
//! a rule — the lexer, not a regex, decides what is code.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ust_lint::analyze_str;
use ust_lint::rules::RuleId;
use ust_lint::waiver::{format_directive, parse_directive, Waiver, WaiverError};

const PATH: &str = "crates/core/src/engine/plan.rs";

#[test]
fn unused_waiver_is_a_finding() {
    let src = "// lint: allow(panicking-call-in-lib) — nothing to suppress here\n\
               pub fn fine() -> u64 { 7 }\n";
    let report = analyze_str(PATH, src);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, RuleId::UnusedWaiver);
}

#[test]
fn malformed_waivers_are_findings() {
    for bad in [
        "// lint: allow(panicking-call-in-lib)\n", // missing reason
        "// lint: allow(no-such-rule) — why\n",    // unknown rule
        "// lint: forbid(panicking-call-in-lib) — why\n", // unknown verb
        "// lint: allow(unused-waiver) — why\n",   // unwaivable rule
        "// lint: allow() — why\n",                // empty rule list
    ] {
        let report = analyze_str(PATH, bad);
        assert_eq!(report.findings.len(), 1, "source: {bad}");
        assert_eq!(report.findings[0].rule, RuleId::MalformedWaiver, "source: {bad}");
    }
}

#[test]
fn doc_comments_never_carry_waivers() {
    // A doc comment quoting the waiver syntax is documentation, not a
    // directive: it must neither suppress nor count as unused/malformed.
    let src = "/// Write `lint: allow(panicking-call-in-lib) — reason` to waive.\n\
               pub fn documented(v: &[u64]) -> u64 { v[0] }\n";
    let report = analyze_str(PATH, src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.waivers.is_empty());
}

#[test]
fn trailing_waiver_covers_its_own_line() {
    let src = "pub fn head(v: &[u64]) -> u64 {\n\
                   v[0] + v.first().copied().unwrap() // lint: allow(panicking-call-in-lib) — fixture\n\
               }\n";
    let report = analyze_str(PATH, src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.waivers_used, 1);
}

#[test]
fn file_scope_waiver_covers_every_site() {
    let src = "// lint: allow-file(panicking-call-in-lib) — fixture: all sites justified\n\
               pub fn a(v: &[u64]) -> u64 { v.first().copied().unwrap() }\n\
               pub fn b(v: &[u64]) -> u64 { v.last().copied().unwrap() }\n";
    let report = analyze_str(PATH, src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn parse_rejects_with_precise_errors() {
    assert!(matches!(
        parse_directive("allow(panicking-call-in-lib)"),
        Err(WaiverError::MissingReason)
    ));
    assert!(matches!(parse_directive("allow(nope) — r"), Err(WaiverError::UnknownRule(_))));
    assert!(matches!(
        parse_directive("allow(malformed-waiver) — r"),
        Err(WaiverError::Unwaivable(RuleId::MalformedWaiver))
    ));
    assert!(matches!(parse_directive("deny(x) — r"), Err(WaiverError::UnknownDirective(_))));
}

/// The waivable rules, indexable by a proptest-chosen seed.
const WAIVABLE: [RuleId; 5] = [
    RuleId::UndocumentedUnsafe,
    RuleId::LockPoisonIdiom,
    RuleId::WallClockInDeterministicPath,
    RuleId::PanickingCallInLib,
    RuleId::UnorderedIterationOnAnswerPath,
];

/// Trigger snippets for rules that fire anywhere in `plan.rs` scope.
const TRIGGERS: [&str; 6] = [
    "x.unwrap()",
    "y.expect(\"reason\")",
    "panic!(\"boom\")",
    "Instant::now()",
    "HashMap::new()",
    "m.lock().unwrap()",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// format → parse is the identity on syntactically valid waivers.
    #[test]
    fn waiver_round_trips(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.random_range(1usize..=3);
        let mut rules: Vec<RuleId> =
            (0..count).map(|_| WAIVABLE[rng.random_range(0usize..WAIVABLE.len())]).collect();
        rules.dedup();
        // Reasons may contain anything but a newline; exercise dashes and
        // colons, which double as separator characters.
        let reasons = ["bounded by len", "a - b: c -- d", "§ünïcode — reason", "x"];
        let reason = reasons[rng.random_range(0usize..reasons.len())].to_string();
        let waiver = Waiver { rules, reason, file_scope: rng.random_range(0u8..2) == 0 };
        let parsed = parse_directive(&format_directive(&waiver));
        prop_assert_eq!(parsed.as_ref(), Ok(&waiver));
    }

    /// A trigger smuggled into a comment, doc comment, string, or raw
    /// string never fires any rule: the lexer sees trivia, not code.
    #[test]
    fn triggers_in_trivia_never_fire(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trigger = TRIGGERS[rng.random_range(0usize..TRIGGERS.len())];
        let src = match rng.random_range(0u8..5) {
            0 => format!("// {trigger}\npub fn f() -> u64 {{ 7 }}\n"),
            1 => format!("/// {trigger}\npub fn f() -> u64 {{ 7 }}\n"),
            2 => format!("/* outer /* {trigger} */ nested */\npub fn f() -> u64 {{ 7 }}\n"),
            3 => format!("pub fn f() -> &'static str {{ \"{trigger}\" }}\n"),
            _ => format!("pub fn f() -> &'static str {{ r#\"{trigger}\"# }}\n"),
        };
        let report = analyze_str(PATH, &src);
        prop_assert!(report.findings.is_empty(), "src: {src}  findings: {:?}", report.findings);
    }

    /// The same trigger as real code always fires — the complement of the
    /// immunity property, so both directions are pinned.
    #[test]
    fn triggers_in_code_always_fire(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trigger = TRIGGERS[rng.random_range(0usize..TRIGGERS.len())];
        let src = format!("pub fn f() {{ let _ = {trigger}; }}\n");
        let report = analyze_str(PATH, &src);
        prop_assert!(!report.findings.is_empty(), "src: {src}");
    }
}
