//! The acceptance gates: the workspace itself is clean under `--deny`, and
//! every SAFETY comment and waiver in the tree is load-bearing — deleting
//! any single one of them makes the analyzer report at least one finding.
//! The second property is what keeps the audit trail honest: a marker that
//! can be deleted without consequence is a marker nobody needed.

use std::path::PathBuf;
use std::process::Command;

use ust_lint::analyze_workspace;

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    ust_lint::walk::find_workspace_root(&manifest).expect("tests run inside the workspace")
}

/// Every in-scope `(path, source)` pair, loaded once — the mutation sweeps
/// re-analyze the whole set so cross-file semantic findings (whose witness
/// and root cause may live in different files) stay reproducible.
fn workspace_sources() -> Vec<(String, String)> {
    let root = workspace_root();
    ust_lint::walk::workspace_files(&root)
        .expect("workspace scan succeeds")
        .into_iter()
        .map(|rel| {
            let src = std::fs::read_to_string(root.join(&rel)).expect("tracked file reads");
            (rel, src)
        })
        .collect()
}

#[test]
fn workspace_is_clean() {
    let report = analyze_workspace(&workspace_root()).expect("workspace scan succeeds");
    assert!(
        report.findings.is_empty(),
        "the workspace must lint clean; found:\n{}",
        report.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
    assert!(report.files_scanned > 50, "suspiciously few files: {}", report.files_scanned);
    assert!(report.waivers_used > 0, "the tree is known to carry waivers");
}

/// Re-analyzes the whole workspace with line `line` (1-based) of `rel`
/// deleted and returns the finding count.
fn findings_without_line(sources: &[(String, String)], rel: &str, line: u32) -> usize {
    let mutated: Vec<(String, String)> = sources
        .iter()
        .map(|(p, s)| {
            if p == rel {
                let m: String = s
                    .lines()
                    .enumerate()
                    .filter(|(i, _)| *i as u32 + 1 != line)
                    .map(|(_, l)| format!("{l}\n"))
                    .collect();
                (p.clone(), m)
            } else {
                (p.clone(), s.clone())
            }
        })
        .collect();
    ust_lint::analyze_files(&mutated).findings.len()
}

#[test]
fn every_safety_comment_is_load_bearing() {
    let sources = workspace_sources();
    let report = ust_lint::analyze_files(&sources);
    assert!(!report.safety_markers.is_empty(), "the tree is known to contain unsafe code");
    for (rel, line) in &report.safety_markers {
        assert!(
            findings_without_line(&sources, rel, *line) > 0,
            "deleting the SAFETY comment at {rel}:{line} went unnoticed"
        );
    }
}

#[test]
fn every_waiver_is_load_bearing() {
    let sources = workspace_sources();
    let report = ust_lint::analyze_files(&sources);
    assert!(!report.waivers.is_empty(), "the tree is known to carry waivers");
    for (rel, line) in &report.waivers {
        assert!(
            findings_without_line(&sources, rel, *line) > 0,
            "deleting the waiver at {rel}:{line} went unnoticed"
        );
    }
}

#[test]
fn lock_graph_is_acyclic_and_matches_the_documented_hierarchy() {
    let root = workspace_root();
    let report = analyze_workspace(&root).expect("workspace scan succeeds");
    assert!(!report.lock_edges.is_empty(), "the tree is known to nest lock acquisitions");
    assert!(
        ust_lint::dataflow::cycle_findings(&report.lock_edges).is_empty(),
        "the workspace lock-order graph has a cycle"
    );
    let doc = std::fs::read_to_string(root.join("ARCHITECTURE.md")).expect("ARCHITECTURE.md reads");
    let documented = ust_lint::dataflow::documented_edges(&doc)
        .expect("ARCHITECTURE.md carries the lock-hierarchy block");
    for e in &report.lock_edges {
        assert!(
            documented.contains(&(e.from.clone(), e.to.clone())),
            "lock-order edge `{}` -> `{}` (witnessed at {}:{} in `{}`) is not in \
             ARCHITECTURE.md's documented hierarchy",
            e.from,
            e.to,
            e.file,
            e.line,
            e.func
        );
    }
}

#[test]
fn cli_exits_zero_on_the_clean_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_ust-lint"))
        .args(["--root".as_ref(), workspace_root().as_os_str(), "--deny".as_ref()])
        .output()
        .expect("ust-lint binary runs");
    assert!(out.status.success(), "stdout: {}", String::from_utf8_lossy(&out.stdout));

    let json = Command::new(env!("CARGO_BIN_EXE_ust-lint"))
        .args(["--root".as_ref(), workspace_root().as_os_str()])
        .args(["--format", "json"])
        .output()
        .expect("ust-lint binary runs");
    let body = String::from_utf8_lossy(&json.stdout);
    assert!(body.contains("\"finding_count\": 0"), "{body}");
}

/// The exact invocation CI runs: deny findings, emit the lock graph,
/// check it against the documented hierarchy — all through the binary.
#[test]
fn cli_emits_the_lock_graph_and_checks_the_hierarchy() {
    let root = workspace_root();
    let dot_path = std::env::temp_dir().join(format!("ust-lint-graph-{}.dot", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_ust-lint"))
        .args(["--root".as_ref(), root.as_os_str(), "--deny".as_ref()])
        .args(["--emit".as_ref(), dot_path.as_os_str()])
        .args(["--check-hierarchy".as_ref(), root.join("ARCHITECTURE.md").as_os_str()])
        .output()
        .expect("ust-lint binary runs");
    let dot = std::fs::read_to_string(&dot_path).unwrap_or_default();
    std::fs::remove_file(&dot_path).ok();
    assert!(out.status.success(), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    assert!(dot.starts_with("digraph lock_order {"), "{dot}");
    assert!(dot.contains("\"QueryProcessor.notify_lock\""), "{dot}");

    // Against a doc without the hierarchy markers the same invocation is
    // a hard configuration error, not a silent pass.
    let broken = Command::new(env!("CARGO_BIN_EXE_ust-lint"))
        .args(["--root".as_ref(), root.as_os_str()])
        .args(["--check-hierarchy".as_ref(), root.join("README.md").as_os_str()])
        .output()
        .expect("ust-lint binary runs");
    assert_eq!(broken.status.code(), Some(2), "{}", String::from_utf8_lossy(&broken.stderr));
}

#[test]
fn cli_deny_fails_on_a_dirty_tree() {
    // A throwaway one-crate workspace with a single deliberate violation.
    let dir = std::env::temp_dir().join(format!("ust-lint-deny-{}", std::process::id()));
    let src = dir.join("src");
    std::fs::create_dir_all(&src).expect("temp workspace dirs");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("temp manifest");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn f(v: &[u64]) -> u64 { v.first().copied().unwrap() }\n",
    )
    .expect("temp source");

    let out = Command::new(env!("CARGO_BIN_EXE_ust-lint"))
        .args(["--root".as_ref(), dir.as_os_str(), "--deny".as_ref()])
        .output()
        .expect("ust-lint binary runs");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(out.status.code(), Some(1), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("panicking-call-in-lib"),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}
