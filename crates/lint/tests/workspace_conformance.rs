//! The acceptance gates: the workspace itself is clean under `--deny`, and
//! every SAFETY comment and waiver in the tree is load-bearing — deleting
//! any single one of them makes the analyzer report at least one finding.
//! The second property is what keeps the audit trail honest: a marker that
//! can be deleted without consequence is a marker nobody needed.

use std::path::{Path, PathBuf};
use std::process::Command;

use ust_lint::{analyze_str, analyze_workspace};

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    ust_lint::walk::find_workspace_root(&manifest).expect("tests run inside the workspace")
}

#[test]
fn workspace_is_clean() {
    let report = analyze_workspace(&workspace_root()).expect("workspace scan succeeds");
    assert!(
        report.findings.is_empty(),
        "the workspace must lint clean; found:\n{}",
        report.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
    assert!(report.files_scanned > 50, "suspiciously few files: {}", report.files_scanned);
    assert!(report.waivers_used > 0, "the tree is known to carry waivers");
}

/// Re-analyzes `rel` with line `line` (1-based) deleted and returns the
/// finding count.
fn findings_without_line(root: &Path, rel: &str, line: u32) -> usize {
    let src = std::fs::read_to_string(root.join(rel)).expect("tracked file reads");
    let mutated: String = src
        .lines()
        .enumerate()
        .filter(|(i, _)| *i as u32 + 1 != line)
        .map(|(_, l)| format!("{l}\n"))
        .collect();
    analyze_str(rel, &mutated).findings.len()
}

#[test]
fn every_safety_comment_is_load_bearing() {
    let root = workspace_root();
    let report = analyze_workspace(&root).expect("workspace scan succeeds");
    assert!(!report.safety_markers.is_empty(), "the tree is known to contain unsafe code");
    for (rel, line) in &report.safety_markers {
        assert!(
            findings_without_line(&root, rel, *line) > 0,
            "deleting the SAFETY comment at {rel}:{line} went unnoticed"
        );
    }
}

#[test]
fn every_waiver_is_load_bearing() {
    let root = workspace_root();
    let report = analyze_workspace(&root).expect("workspace scan succeeds");
    assert!(!report.waivers.is_empty(), "the tree is known to carry waivers");
    for (rel, line) in &report.waivers {
        assert!(
            findings_without_line(&root, rel, *line) > 0,
            "deleting the waiver at {rel}:{line} went unnoticed"
        );
    }
}

#[test]
fn cli_exits_zero_on_the_clean_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_ust-lint"))
        .args(["--root".as_ref(), workspace_root().as_os_str(), "--deny".as_ref()])
        .output()
        .expect("ust-lint binary runs");
    assert!(out.status.success(), "stdout: {}", String::from_utf8_lossy(&out.stdout));

    let json = Command::new(env!("CARGO_BIN_EXE_ust-lint"))
        .args(["--root".as_ref(), workspace_root().as_os_str()])
        .args(["--format", "json"])
        .output()
        .expect("ust-lint binary runs");
    let body = String::from_utf8_lossy(&json.stdout);
    assert!(body.contains("\"finding_count\": 0"), "{body}");
}

#[test]
fn cli_deny_fails_on_a_dirty_tree() {
    // A throwaway one-crate workspace with a single deliberate violation.
    let dir = std::env::temp_dir().join(format!("ust-lint-deny-{}", std::process::id()));
    let src = dir.join("src");
    std::fs::create_dir_all(&src).expect("temp workspace dirs");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("temp manifest");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn f(v: &[u64]) -> u64 { v.first().copied().unwrap() }\n",
    )
    .expect("temp source");

    let out = Command::new(env!("CARGO_BIN_EXE_ust-lint"))
        .args(["--root".as_ref(), dir.as_os_str(), "--deny".as_ref()])
        .output()
        .expect("ust-lint binary runs");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(out.status.code(), Some(1), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("panicking-call-in-lib"),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}
