//! Every rule against a positive and a negative fixture: the positive
//! fixture must produce exactly the expected findings, the negative one
//! none. Fixtures live under `tests/fixtures/` — outside the walker's
//! `src/` scope, so the workspace scan never sees their trigger tokens.

use ust_lint::analyze_str;
use ust_lint::rules::RuleId;

/// A path inside every rule's scope (engine code, where the unordered and
/// panicking rules bite; wall-clock needs `plan.rs` specifically).
const ENGINE_PATH: &str = "crates/core/src/engine/plan.rs";

fn rules_fired(path: &str, src: &str) -> Vec<RuleId> {
    analyze_str(path, src).findings.into_iter().map(|f| f.rule).collect()
}

#[test]
fn undocumented_unsafe_positive() {
    let fired = rules_fired(ENGINE_PATH, include_str!("fixtures/undocumented_unsafe_pos.rs"));
    assert!(fired.contains(&RuleId::UndocumentedUnsafe), "fired: {fired:?}");
}

#[test]
fn undocumented_unsafe_negative() {
    let report = analyze_str(ENGINE_PATH, include_str!("fixtures/undocumented_unsafe_neg.rs"));
    assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
    // Both the `# Safety` doc section and the `// SAFETY:` comment register
    // as markers — the mutation harness depends on this.
    assert_eq!(report.safety_markers.len(), 2);
}

#[test]
fn lock_poison_positive() {
    let fired = rules_fired(ENGINE_PATH, include_str!("fixtures/lock_poison_pos.rs"));
    // `.lock().unwrap()` and `.lock().expect(...)` each fire once.
    assert_eq!(fired.iter().filter(|r| **r == RuleId::LockPoisonIdiom).count(), 2, "{fired:?}");
}

#[test]
fn lock_poison_negative() {
    let fired = rules_fired(ENGINE_PATH, include_str!("fixtures/lock_poison_neg.rs"));
    assert!(!fired.contains(&RuleId::LockPoisonIdiom), "fired: {fired:?}");
}

#[test]
fn wall_clock_positive_in_scope() {
    let src = include_str!("fixtures/wall_clock_pos.rs");
    let fired = rules_fired(ENGINE_PATH, src);
    assert_eq!(
        fired.iter().filter(|r| **r == RuleId::WallClockInDeterministicPath).count(),
        2,
        "{fired:?}"
    );
    // The same source outside the deterministic scope is clean: serving
    // and metrics code may read the clock freely.
    let fired = rules_fired("crates/core/src/serving.rs", src);
    assert!(!fired.contains(&RuleId::WallClockInDeterministicPath), "fired: {fired:?}");
}

#[test]
fn wall_clock_negative() {
    let report = analyze_str(ENGINE_PATH, include_str!("fixtures/wall_clock_neg.rs"));
    assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
}

#[test]
fn panicking_positive() {
    let fired = rules_fired(ENGINE_PATH, include_str!("fixtures/panicking_pos.rs"));
    // unwrap, expect, panic!, todo!, unimplemented!, unreachable!.
    assert_eq!(fired.iter().filter(|r| **r == RuleId::PanickingCallInLib).count(), 6, "{fired:?}");
    // The bench harness is out of scope for this rule by design.
    let fired =
        rules_fired("crates/bench/src/experiments.rs", include_str!("fixtures/panicking_pos.rs"));
    assert!(!fired.contains(&RuleId::PanickingCallInLib), "fired: {fired:?}");
}

#[test]
fn panicking_negative() {
    let report = analyze_str(ENGINE_PATH, include_str!("fixtures/panicking_neg.rs"));
    assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
    // The waiver on `head()` did real work (the test-module panics are
    // excluded by region tracking, not by the waiver).
    assert_eq!(report.waivers_used, 1);
}

#[test]
fn unordered_positive_in_scope() {
    let src = include_str!("fixtures/unordered_pos.rs");
    let fired = rules_fired(ENGINE_PATH, src);
    assert!(
        fired.iter().filter(|r| **r == RuleId::UnorderedIterationOnAnswerPath).count() >= 2,
        "{fired:?}"
    );
    // Outside the answer path the same containers are fine.
    let fired = rules_fired("crates/data/src/synthetic.rs", src);
    assert!(!fired.contains(&RuleId::UnorderedIterationOnAnswerPath), "fired: {fired:?}");
}

#[test]
fn unordered_negative() {
    let report = analyze_str(ENGINE_PATH, include_str!("fixtures/unordered_neg.rs"));
    assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
}

#[test]
fn findings_carry_positions_and_render_stably() {
    let report = analyze_str(ENGINE_PATH, include_str!("fixtures/wall_clock_pos.rs"));
    let f = &report.findings[0];
    assert_eq!(f.file, ENGINE_PATH);
    assert!(f.line > 0 && f.col > 0);
    let rendered = f.to_string();
    assert!(rendered.starts_with(&format!("{ENGINE_PATH}:{}:{}: ", f.line, f.col)), "{rendered}");
    assert!(rendered.contains("[wall-clock-in-deterministic-path]"), "{rendered}");
    let json = report.to_json();
    assert!(json.contains("\"rule\": \"wall-clock-in-deterministic-path\""), "{json}");
    assert!(json.contains("\"finding_count\": 2"), "{json}");
}
