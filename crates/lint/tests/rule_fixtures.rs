//! Every rule against a positive and a negative fixture: the positive
//! fixture must produce exactly the expected findings, the negative one
//! none. Fixtures live under `tests/fixtures/` — outside the walker's
//! `src/` scope, so the workspace scan never sees their trigger tokens.

use ust_lint::analyze_str;
use ust_lint::rules::RuleId;

/// A path inside every rule's scope (engine code, where the unordered and
/// panicking rules bite; wall-clock needs `plan.rs` specifically).
const ENGINE_PATH: &str = "crates/core/src/engine/plan.rs";

fn rules_fired(path: &str, src: &str) -> Vec<RuleId> {
    analyze_str(path, src).findings.into_iter().map(|f| f.rule).collect()
}

#[test]
fn undocumented_unsafe_positive() {
    let fired = rules_fired(ENGINE_PATH, include_str!("fixtures/undocumented_unsafe_pos.rs"));
    assert!(fired.contains(&RuleId::UndocumentedUnsafe), "fired: {fired:?}");
}

#[test]
fn undocumented_unsafe_negative() {
    let report = analyze_str(ENGINE_PATH, include_str!("fixtures/undocumented_unsafe_neg.rs"));
    assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
    // Both the `# Safety` doc section and the `// SAFETY:` comment register
    // as markers — the mutation harness depends on this.
    assert_eq!(report.safety_markers.len(), 2);
}

#[test]
fn lock_poison_positive() {
    let fired = rules_fired(ENGINE_PATH, include_str!("fixtures/lock_poison_pos.rs"));
    // `.lock().unwrap()` and `.lock().expect(...)` each fire once.
    assert_eq!(fired.iter().filter(|r| **r == RuleId::LockPoisonIdiom).count(), 2, "{fired:?}");
}

#[test]
fn lock_poison_negative() {
    let fired = rules_fired(ENGINE_PATH, include_str!("fixtures/lock_poison_neg.rs"));
    assert!(!fired.contains(&RuleId::LockPoisonIdiom), "fired: {fired:?}");
}

#[test]
fn wall_clock_positive_in_scope() {
    let src = include_str!("fixtures/wall_clock_pos.rs");
    let fired = rules_fired(ENGINE_PATH, src);
    assert_eq!(
        fired.iter().filter(|r| **r == RuleId::WallClockInDeterministicPath).count(),
        2,
        "{fired:?}"
    );
    // The same source outside the deterministic scope is clean: serving
    // and metrics code may read the clock freely.
    let fired = rules_fired("crates/core/src/serving.rs", src);
    assert!(!fired.contains(&RuleId::WallClockInDeterministicPath), "fired: {fired:?}");
}

#[test]
fn wall_clock_negative() {
    let report = analyze_str(ENGINE_PATH, include_str!("fixtures/wall_clock_neg.rs"));
    assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
}

#[test]
fn panicking_positive() {
    let fired = rules_fired(ENGINE_PATH, include_str!("fixtures/panicking_pos.rs"));
    // unwrap, expect, panic!, todo!, unimplemented!, unreachable!.
    assert_eq!(fired.iter().filter(|r| **r == RuleId::PanickingCallInLib).count(), 6, "{fired:?}");
    // The bench harness is out of scope for this rule by design.
    let fired =
        rules_fired("crates/bench/src/experiments.rs", include_str!("fixtures/panicking_pos.rs"));
    assert!(!fired.contains(&RuleId::PanickingCallInLib), "fired: {fired:?}");
}

#[test]
fn panicking_negative() {
    let report = analyze_str(ENGINE_PATH, include_str!("fixtures/panicking_neg.rs"));
    assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
    // The waiver on `head()` did real work (the test-module panics are
    // excluded by region tracking, not by the waiver).
    assert_eq!(report.waivers_used, 1);
}

#[test]
fn unordered_positive_in_scope() {
    let src = include_str!("fixtures/unordered_pos.rs");
    let fired = rules_fired(ENGINE_PATH, src);
    assert!(
        fired.iter().filter(|r| **r == RuleId::UnorderedIterationOnAnswerPath).count() >= 2,
        "{fired:?}"
    );
    // Outside the answer path the same containers are fine.
    let fired = rules_fired("crates/data/src/synthetic.rs", src);
    assert!(!fired.contains(&RuleId::UnorderedIterationOnAnswerPath), "fired: {fired:?}");
}

#[test]
fn unordered_negative() {
    let report = analyze_str(ENGINE_PATH, include_str!("fixtures/unordered_neg.rs"));
    assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
}

/// The alloc rule's only scope: the propagation kernels.
const KERNELS_PATH: &str = "crates/markov/src/kernels.rs";

#[test]
fn lock_order_positive() {
    let report = analyze_str(ENGINE_PATH, include_str!("fixtures/lock_order_pos.rs"));
    let inversions: Vec<_> =
        report.findings.iter().filter(|f| f.rule == RuleId::LockOrderInversion).collect();
    assert_eq!(inversions.len(), 1, "findings: {:?}", report.findings);
    // The finding names both locks and both witness chains.
    let msg = &inversions[0].message;
    assert!(msg.contains("Ledger.accounts") && msg.contains("Journal.entries"), "{msg}");
    assert!(msg.contains("`Ledger.accounts` → `Journal.entries`"), "{msg}");
    assert!(msg.contains("`Journal.entries` → `Ledger.accounts`"), "{msg}");
    // Both nesting directions are recorded as edges.
    assert_eq!(report.lock_edges.len(), 2, "{:?}", report.lock_edges);
}

#[test]
fn lock_order_negative() {
    let report = analyze_str(ENGINE_PATH, include_str!("fixtures/lock_order_neg.rs"));
    assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
    // The consistent order still contributes its edge to the graph.
    assert_eq!(report.lock_edges.len(), 1, "{:?}", report.lock_edges);
    assert_eq!(report.lock_edges[0].from, "Ledger.accounts");
    assert_eq!(report.lock_edges[0].to, "Journal.entries");
}

/// The mutation test: seeding a reversed acquisition into the clean
/// fixture (swapping the two lock statements of `audit`) must be caught
/// as `lock-order-inversion`.
#[test]
fn seeded_reversed_acquisition_is_caught() {
    let clean = include_str!("fixtures/lock_order_neg.rs");
    let acct =
        "let accounts = ledger.accounts.lock().unwrap_or_else(std::sync::PoisonError::into_inner);";
    let entr =
        "let entries = journal.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);";
    // Swap the acquisition order in the *second* function only.
    let reversed = {
        let split = clean.rfind(acct).expect("fixture contains the accounts acquisition");
        let (head, tail) = clean.split_at(split);
        let tail =
            tail.replacen(acct, "SWAP_A", 1).replacen(entr, acct, 1).replacen("SWAP_A", entr, 1);
        format!("{head}{tail}")
    };
    assert_ne!(clean, reversed, "the mutation must change the source");
    let fired = rules_fired(ENGINE_PATH, &reversed);
    assert!(fired.contains(&RuleId::LockOrderInversion), "fired: {fired:?}");
}

/// The standalone seeded-inversion mini-workspace CI runs `ust-lint
/// --root` against must be rejected, through the library and the binary.
#[test]
fn seeded_inversion_crate_is_rejected() {
    let dir =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/inversion_crate");
    let report = ust_lint::analyze_workspace(&dir).expect("fixture crate scans");
    assert!(
        report.findings.iter().any(|f| f.rule == RuleId::LockOrderInversion),
        "findings: {:?}",
        report.findings
    );

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ust-lint"))
        .args(["--root".as_ref(), dir.as_os_str(), "--deny".as_ref()])
        .output()
        .expect("ust-lint binary runs");
    assert_eq!(out.status.code(), Some(1), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("lock-order-inversion"),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn lock_blocking_positive() {
    let report = analyze_str(ENGINE_PATH, include_str!("fixtures/lock_blocking_pos.rs"));
    let blocking: Vec<_> =
        report.findings.iter().filter(|f| f.rule == RuleId::LockHeldAcrossBlocking).collect();
    assert_eq!(blocking.len(), 1, "findings: {:?}", report.findings);
    // The held (non-consumed) guard is named; the consumed one is exempt.
    assert!(blocking[0].message.contains("Stats.totals"), "{}", blocking[0].message);
    assert!(!blocking[0].message.contains("Gate.slots"), "{}", blocking[0].message);
}

#[test]
fn lock_blocking_negative() {
    let report = analyze_str(ENGINE_PATH, include_str!("fixtures/lock_blocking_neg.rs"));
    assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
}

#[test]
fn alloc_hot_loop_positive_in_scope() {
    let src = include_str!("fixtures/alloc_hot_loop_pos.rs");
    let fired = rules_fired(KERNELS_PATH, src);
    // `.push`, `vec!` and `.to_vec` inside loop bodies; the loop-free
    // `Vec::new` does not fire.
    assert_eq!(
        fired.iter().filter(|r| **r == RuleId::AllocInKernelHotLoop).count(),
        3,
        "{fired:?}"
    );
    // Outside the kernels the same source is clean.
    let fired = rules_fired(ENGINE_PATH, src);
    assert!(!fired.contains(&RuleId::AllocInKernelHotLoop), "fired: {fired:?}");
}

#[test]
fn alloc_hot_loop_negative() {
    let report = analyze_str(KERNELS_PATH, include_str!("fixtures/alloc_hot_loop_neg.rs"));
    assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
}

#[test]
fn findings_carry_positions_and_render_stably() {
    let report = analyze_str(ENGINE_PATH, include_str!("fixtures/wall_clock_pos.rs"));
    let f = &report.findings[0];
    assert_eq!(f.file, ENGINE_PATH);
    assert!(f.line > 0 && f.col > 0);
    let rendered = f.to_string();
    assert!(rendered.starts_with(&format!("{ENGINE_PATH}:{}:{}: ", f.line, f.col)), "{rendered}");
    assert!(rendered.contains("[wall-clock-in-deterministic-path]"), "{rendered}");
    let json = report.to_json();
    assert!(json.contains("\"rule\": \"wall-clock-in-deterministic-path\""), "{json}");
    assert!(json.contains("\"finding_count\": 2"), "{json}");
}
