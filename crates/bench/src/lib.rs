//! # ust-bench — the evaluation harness
//!
//! Regenerates every figure of the paper's Section VIII (Figures 8–11;
//! Table I is the generator configuration, encoded as
//! [`ust_data::SyntheticConfig::default`]). Each experiment module produces
//! [`ust_data::ResultTable`]s with the same axes as the corresponding
//! figure; the `paper_experiments` binary renders them as Markdown/CSV and
//! they are archived in EXPERIMENTS.md.
//!
//! Two scales are supported: [`Scale::Ci`] shrinks `|D|`/`|S|` so the whole
//! suite runs in a couple of minutes on a laptop, [`Scale::Paper`] uses the
//! paper's exact parameters. The *shape* of the results (who wins, how the
//! curves scale) is the reproduction target; absolute numbers differ from
//! the 2012 MATLAB/Xeon-5160 testbed by construction.

#![warn(missing_docs)]

pub mod experiments;

use std::time::Instant;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced datasets: the full suite finishes in minutes.
    Ci,
    /// The paper's exact parameters (Table I defaults).
    Paper,
}

impl Scale {
    /// Parses `"ci"` / `"paper"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "ci" => Some(Scale::Ci),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Wall-clock time of one invocation of `f`, in seconds, together with its
/// result.
pub fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// A labelled experiment output: figure id, table, and free-form notes on
/// the expected shape.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Figure identifier, e.g. `"fig8a"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The regenerated data series.
    pub table: ust_data::ResultTable,
    /// What the paper's figure shows, and what to check here.
    pub expectation: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("ci"), Some(Scale::Ci));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn timing_returns_result() {
        let (secs, value) = time(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }
}
