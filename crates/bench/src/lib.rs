//! # ust-bench — the evaluation harness
//!
//! Regenerates every figure of the paper's Section VIII (Figures 8–11;
//! Table I is the generator configuration, encoded as
//! [`ust_data::SyntheticConfig::default`]). Each experiment module produces
//! [`ust_data::ResultTable`]s with the same axes as the corresponding
//! figure; the `paper_experiments` binary renders them as Markdown/CSV, and
//! `--json` writes the machine-readable trajectory files committed at the
//! repository root (`BENCH_pr2.json`, `BENCH_pr3.json`).
//!
//! Two scales are supported: [`Scale::Ci`] shrinks `|D|`/`|S|` so the whole
//! suite runs in a couple of minutes on a laptop, [`Scale::Paper`] uses the
//! paper's exact parameters. The *shape* of the results (who wins, how the
//! curves scale) is the reproduction target; absolute numbers differ from
//! the 2012 MATLAB/Xeon-5160 testbed by construction.

#![deny(missing_docs)]

pub mod experiments;

use std::time::Instant;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced datasets: the full suite finishes in minutes.
    Ci,
    /// The paper's exact parameters (Table I defaults).
    Paper,
}

impl Scale {
    /// Parses `"ci"` / `"paper"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "ci" => Some(Scale::Ci),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Wall-clock time of one invocation of `f`, in seconds, together with its
/// result.
pub fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// A labelled experiment output: figure id, table, free-form notes on the
/// expected shape, and machine-readable metrics.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Figure identifier, e.g. `"fig8a"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The regenerated data series.
    pub table: ust_data::ResultTable,
    /// What the paper's figure shows, and what to check here.
    pub expectation: String,
    /// Named scalar metrics (operation counters, cache hit rates, …) for
    /// the machine-readable `BENCH_pr2.json` trajectory.
    pub metrics: Vec<(String, f64)>,
}

impl ExperimentOutput {
    /// Appends a named metric (builder style).
    pub fn with_metric(mut self, name: impl Into<String>, value: f64) -> Self {
        self.metrics.push((name.into(), value));
        self
    }

    /// Appends the counters of an [`ust_core::EvalStats`] under a prefix,
    /// e.g. `"ob_transitions"`.
    pub fn with_stats_metrics(mut self, prefix: &str, stats: &ust_core::EvalStats) -> Self {
        self.metrics.push((format!("{prefix}_transitions"), stats.transitions as f64));
        self.metrics.push((format!("{prefix}_rows_traversed"), stats.rows_traversed as f64));
        self.metrics.push((format!("{prefix}_entries_touched"), stats.entries_touched as f64));
        self.metrics.push((format!("{prefix}_backward_steps"), stats.backward_steps as f64));
        self.metrics.push((format!("{prefix}_cache_hits"), stats.cache_hits as f64));
        self.metrics.push((format!("{prefix}_cache_misses"), stats.cache_misses as f64));
        self.metrics.push((format!("{prefix}_fields_shared"), stats.fields_shared as f64));
        self.metrics.push((format!("{prefix}_pruned_mass"), stats.pruned_mass));
        self.metrics
            .push((format!("{prefix}_candidates_examined"), stats.candidates_examined as f64));
        self.metrics.push((format!("{prefix}_candidates_pruned"), stats.candidates_pruned as f64));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("ci"), Some(Scale::Ci));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn timing_returns_result() {
        let (secs, value) = time(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }
}
