//! Regenerates every figure of the paper's evaluation section.
//!
//! ```text
//! paper_experiments [--scale ci|paper] [--only fig8a,fig9d,...] [--out DIR]
//! ```
//!
//! Prints each experiment as a Markdown table (the format EXPERIMENTS.md
//! archives) and, when `--out` is given, writes one CSV per experiment.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use ust_bench::{experiments, Scale};

struct Args {
    scale: Scale,
    only: Option<Vec<String>>,
    out_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { scale: Scale::Ci, only: None, out_dir: None };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().ok_or("--scale requires a value")?;
                args.scale = Scale::parse(&value)
                    .ok_or_else(|| format!("unknown scale '{value}' (use ci|paper)"))?;
            }
            "--only" => {
                let value = iter.next().ok_or("--only requires a value")?;
                let ids: Vec<String> = value.split(',').map(|s| s.trim().to_string()).collect();
                for id in &ids {
                    if !experiments::known_ids().contains(&id.as_str()) {
                        return Err(format!(
                            "unknown experiment '{id}'; known: {}",
                            experiments::known_ids().join(", ")
                        ));
                    }
                }
                args.only = Some(ids);
            }
            "--out" => {
                let value = iter.next().ok_or("--out requires a directory")?;
                args.out_dir = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                println!(
                    "usage: paper_experiments [--scale ci|paper] [--only id,id,...] [--out DIR]\n\
                     experiments: {}",
                    experiments::known_ids().join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let scale_name = match args.scale {
        Scale::Ci => "ci",
        Scale::Paper => "paper",
    };
    println!("# Paper experiment reproduction (scale: {scale_name})\n");
    println!(
        "Reproducing the evaluation of Emrich et al., *Querying Uncertain \
         Spatio-Temporal Data*, ICDE 2012.\n"
    );

    if let Some(dir) = &args.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create output directory {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    // Run experiments lazily, streaming each result as it completes.
    let ids: Vec<String> = match &args.only {
        Some(ids) => ids.clone(),
        None => experiments::known_ids().iter().map(|s| s.to_string()).collect(),
    };

    for id in &ids {
        let started = std::time::Instant::now();
        let output = experiments::by_id(id, args.scale).expect("ids validated during parsing");
        println!("## {} (`{}`)\n", output.title, output.id);
        println!("{}", output.table.to_markdown());
        println!("*Expected shape:* {}\n", output.expectation);
        println!("*(experiment wall time: {:.1}s)*\n", started.elapsed().as_secs_f64());
        if let Some(dir) = &args.out_dir {
            let path = dir.join(format!("{}.csv", output.id));
            if let Err(e) = output.table.write_csv(&path) {
                eprintln!("error: writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        // Flush so long runs stream progress.
        let _ = std::io::stdout().flush();
    }

    if let Some(dir) = &args.out_dir {
        println!("CSV series written to {}", dir.display());
    }
    ExitCode::SUCCESS
}
