//! Regenerates every figure of the paper's evaluation section.
//!
//! ```text
//! paper_experiments [--scale ci|paper] [--only fig8a,fig9d,...] [--out DIR]
//!                   [--json FILE]
//! ```
//!
//! Prints each experiment as a Markdown table; `--out` writes one CSV per
//! experiment, `--json` writes every experiment's wall time, metrics and
//! table into one machine-readable JSON file (the `BENCH_pr2.json` /
//! `BENCH_pr3.json` perf trajectories committed at the repository root).

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use ust_bench::{experiments, ExperimentOutput, Scale};

struct Args {
    scale: Scale,
    only: Option<Vec<String>>,
    out_dir: Option<PathBuf>,
    json_path: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { scale: Scale::Ci, only: None, out_dir: None, json_path: None };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().ok_or("--scale requires a value")?;
                args.scale = Scale::parse(&value)
                    .ok_or_else(|| format!("unknown scale '{value}' (use ci|paper)"))?;
            }
            "--only" => {
                let value = iter.next().ok_or("--only requires a value")?;
                let ids: Vec<String> = value.split(',').map(|s| s.trim().to_string()).collect();
                for id in &ids {
                    if !experiments::known_ids().contains(&id.as_str()) {
                        return Err(format!(
                            "unknown experiment '{id}'; known: {}",
                            experiments::known_ids().join(", ")
                        ));
                    }
                }
                args.only = Some(ids);
            }
            "--out" => {
                let value = iter.next().ok_or("--out requires a directory")?;
                args.out_dir = Some(PathBuf::from(value));
            }
            "--json" => {
                let value = iter.next().ok_or("--json requires a file path")?;
                args.json_path = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                println!(
                    "usage: paper_experiments [--scale ci|paper] [--only id,id,...] [--out DIR] \
                     [--json FILE]\n\
                     experiments: {}",
                    experiments::known_ids().join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

/// Minimal JSON string escaping (the vendored toolchain has no serde).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders the run as one JSON document: per experiment its id, title,
/// wall time, named metrics and the full result table.
fn render_json(scale_name: &str, results: &[(f64, ExperimentOutput)]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", json_escape(scale_name)));
    out.push_str("  \"experiments\": [\n");
    for (i, (wall, exp)) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"id\": \"{}\",\n", json_escape(&exp.id)));
        out.push_str(&format!("      \"title\": \"{}\",\n", json_escape(&exp.title)));
        out.push_str(&format!("      \"wall_secs\": {},\n", json_number(*wall)));
        out.push_str("      \"metrics\": {");
        for (j, (name, value)) in exp.metrics.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", json_escape(name), json_number(*value)));
        }
        out.push_str("},\n");
        out.push_str("      \"table\": {\n");
        out.push_str("        \"columns\": [");
        for (j, h) in exp.table.headers().iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", json_escape(h)));
        }
        out.push_str("],\n        \"rows\": [");
        for (j, row) in exp.table.rows().iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push('[');
            for (c, cell) in row.iter().enumerate() {
                if c > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", json_escape(cell)));
            }
            out.push(']');
        }
        out.push_str("]\n      }\n");
        out.push_str(if i + 1 < results.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let scale_name = match args.scale {
        Scale::Ci => "ci",
        Scale::Paper => "paper",
    };
    println!("# Paper experiment reproduction (scale: {scale_name})\n");
    println!(
        "Reproducing the evaluation of Emrich et al., *Querying Uncertain \
         Spatio-Temporal Data*, ICDE 2012.\n"
    );

    if let Some(dir) = &args.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create output directory {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    // Run experiments lazily, streaming each result as it completes.
    let ids: Vec<String> = match &args.only {
        Some(ids) => ids.clone(),
        None => experiments::known_ids().iter().map(|s| s.to_string()).collect(),
    };

    let mut results: Vec<(f64, ExperimentOutput)> = Vec::with_capacity(ids.len());
    for id in &ids {
        let started = std::time::Instant::now();
        let output = experiments::by_id(id, args.scale).expect("ids validated during parsing");
        let wall = started.elapsed().as_secs_f64();
        println!("## {} (`{}`)\n", output.title, output.id);
        println!("{}", output.table.to_markdown());
        println!("*Expected shape:* {}\n", output.expectation);
        println!("*(experiment wall time: {wall:.1}s)*\n");
        if let Some(dir) = &args.out_dir {
            let path = dir.join(format!("{}.csv", output.id));
            if let Err(e) = output.table.write_csv(&path) {
                eprintln!("error: writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        results.push((wall, output));
        // Flush so long runs stream progress.
        let _ = std::io::stdout().flush();
    }

    if let Some(dir) = &args.out_dir {
        println!("CSV series written to {}", dir.display());
    }
    if let Some(path) = &args.json_path {
        if let Err(e) = std::fs::write(path, render_json(scale_name, &results)) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("JSON trajectory written to {}", path.display());
    }
    ExitCode::SUCCESS
}
