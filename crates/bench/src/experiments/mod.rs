//! Experiment implementations, one module per figure of the paper.

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig8;
pub mod fig9;
pub mod pr2;
pub mod pr3;
pub mod pr4;
pub mod pr5;
pub mod pr6;
pub mod pr7;
pub mod pr8;

use crate::{ExperimentOutput, Scale};

/// Runs every experiment of the evaluation section (Figures 8–11) plus the
/// design-choice ablations, in figure order.
pub fn all(scale: Scale) -> Vec<ExperimentOutput> {
    let mut out = vec![
        fig8::fig8a(scale),
        fig8::fig8b(scale),
        fig9::fig9a(scale),
        fig9::fig9b(scale),
        fig9::fig9c(scale),
        fig9::fig9d(scale),
        fig10::fig10a(scale),
        fig10::fig10b(scale),
        fig11::fig11a(scale),
        fig11::fig11b(scale),
    ];
    out.extend(ablation::all(scale));
    out.push(pr2::pr2_batching(scale));
    out.push(pr2::pr2_cache(scale));
    out.push(pr3::pr3_pool(scale));
    out.push(pr4::pr4_planner(scale));
    out.push(pr5::pr5_admission(scale));
    out.push(pr6::pr6_kernels(scale));
    out.push(pr7::pr7_index(scale));
    out.push(pr8::pr8_streaming(scale));
    out
}

/// Returns the experiment with the given id, if implemented.
pub fn by_id(id: &str, scale: Scale) -> Option<ExperimentOutput> {
    match id {
        "fig8a" => Some(fig8::fig8a(scale)),
        "fig8b" => Some(fig8::fig8b(scale)),
        "fig9a" => Some(fig9::fig9a(scale)),
        "fig9b" => Some(fig9::fig9b(scale)),
        "fig9c" => Some(fig9::fig9c(scale)),
        "fig9d" => Some(fig9::fig9d(scale)),
        "fig10a" => Some(fig10::fig10a(scale)),
        "fig10b" => Some(fig10::fig10b(scale)),
        "fig11a" => Some(fig11::fig11a(scale)),
        "fig11b" => Some(fig11::fig11b(scale)),
        "ablation_augmented" => Some(ablation::ablation_augmented(scale)),
        "ablation_hybrid" => Some(ablation::ablation_hybrid(scale)),
        "ablation_epsilon" => Some(ablation::ablation_epsilon(scale)),
        "ablation_threshold" => Some(ablation::ablation_threshold(scale)),
        "pr2_batching" => Some(pr2::pr2_batching(scale)),
        "pr2_cache" => Some(pr2::pr2_cache(scale)),
        "pr3_pool" => Some(pr3::pr3_pool(scale)),
        "pr4_planner" => Some(pr4::pr4_planner(scale)),
        "pr5_admission" => Some(pr5::pr5_admission(scale)),
        "pr6_kernels" => Some(pr6::pr6_kernels(scale)),
        "pr7_index" => Some(pr7::pr7_index(scale)),
        "pr8_streaming" => Some(pr8::pr8_streaming(scale)),
        _ => None,
    }
}

/// All known experiment ids (harness `--only` argument values).
pub fn known_ids() -> &'static [&'static str] {
    &[
        "fig8a",
        "fig8b",
        "fig9a",
        "fig9b",
        "fig9c",
        "fig9d",
        "fig10a",
        "fig10b",
        "fig11a",
        "fig11b",
        "ablation_augmented",
        "ablation_hybrid",
        "ablation_epsilon",
        "ablation_threshold",
        "pr2_batching",
        "pr2_cache",
        "pr3_pool",
        "pr4_planner",
        "pr5_admission",
        "pr6_kernels",
        "pr7_index",
        "pr8_streaming",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_table_covers_known_ids() {
        // `by_id` at Ci scale actually *runs* an experiment, so running all
        // of them here would be too slow; instead verify one cheap
        // experiment end-to-end and reject unknown ids. Totality of the
        // dispatch table over `known_ids` is guaranteed by the match in
        // `by_id` (checked exhaustively by the harness's argument parser,
        // which validates `--only` values against `known_ids`).
        let out = by_id("ablation_augmented", Scale::Ci).unwrap();
        assert!(!out.table.is_empty());
        assert_eq!(out.id, "ablation_augmented");
        assert!(by_id("nope", Scale::Ci).is_none());
        assert_eq!(known_ids().len(), 22);
    }
}
