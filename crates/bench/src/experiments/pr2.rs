//! PR 2 trajectory experiments: batched multi-object propagation and the
//! backward-field cache, measured in operation counts rather than
//! wall-clock alone (the counters are deterministic across machines).

use ust_core::engine::cache::BackwardFieldCache;
use ust_core::engine::{object_based, query_based, EngineConfig};
use ust_core::{ranking, threshold, EvalStats};
use ust_data::csv::fmt_secs;
use ust_data::workload;
use ust_data::{synthetic, ResultTable, SyntheticConfig};
use ust_space::TimeSet;

use crate::{time, ExperimentOutput, Scale};

/// The fig11 locality workload (banded transitions, `max_step` wide) —
/// literally fig11's dataset, so the cross-reference in the experiment
/// titles holds by construction.
fn locality_config(scale: Scale) -> SyntheticConfig {
    super::fig11::base_config(scale)
}

/// Batched OB-∃ vs the per-object baseline on the fig11 locality workload:
/// same bits out, fewer transition-matrix rows streamed.
pub fn pr2_batching(scale: Scale) -> ExperimentOutput {
    batching_experiment(&locality_config(scale))
}

fn batching_experiment(cfg: &SyntheticConfig) -> ExperimentOutput {
    let data = synthetic::generate(cfg);
    let window = workload::paper_default_window(cfg.num_states).expect("window fits");

    let mut table = ResultTable::new([
        "batch size",
        "wall (s)",
        "transitions",
        "rows traversed",
        "traversals / per-object",
    ]);
    let mut per_object = EvalStats::new();
    let (base_t, baseline) = time(|| {
        object_based::evaluate(
            &data.db,
            &window,
            &EngineConfig::default().with_batch_size(1),
            &mut per_object,
        )
        .unwrap()
    });
    table.push_row([
        "1 (per-object)".to_string(),
        fmt_secs(base_t),
        per_object.transitions.to_string(),
        per_object.rows_traversed.to_string(),
        "1.000".to_string(),
    ]);

    let mut out = ExperimentOutput {
        metrics: Vec::new(),
        id: "pr2_batching".into(),
        title: "PR 2 — batched multi-object OB-∃ vs per-object baseline (fig11 locality workload)"
            .into(),
        table: ResultTable::new([""]),
        expectation: "Identical probabilities at every batch size; total matrix-row \
                      traversals drop as overlapping supports share each streamed row. \
                      (Wall time follows the traversal count only once the matrix \
                      outgrows the CPU caches — at CI scale the 10k-state matrix is \
                      fully cache-resident and the merge bookkeeping dominates; the \
                      deterministic traversal counter is the scale-free signal.)"
            .into(),
    }
    .with_stats_metrics("per_object", &per_object)
    .with_metric("per_object_wall_secs", base_t);

    for batch_size in [8usize, 32, 128] {
        let mut stats = EvalStats::new();
        let (t, batched) = time(|| {
            object_based::evaluate(
                &data.db,
                &window,
                &EngineConfig::default().with_batch_size(batch_size),
                &mut stats,
            )
            .unwrap()
        });
        assert!(
            baseline
                .iter()
                .zip(&batched)
                .all(|(a, b)| a.probability.to_bits() == b.probability.to_bits()),
            "batched OB must be bit-identical to the per-object baseline"
        );
        let ratio = stats.rows_traversed as f64 / per_object.rows_traversed.max(1) as f64;
        table.push_row([
            batch_size.to_string(),
            fmt_secs(t),
            stats.transitions.to_string(),
            stats.rows_traversed.to_string(),
            format!("{ratio:.3}"),
        ]);
        out = out
            .with_stats_metrics(&format!("batch{batch_size}"), &stats)
            .with_metric(format!("batch{batch_size}_wall_secs"), t);
    }
    out.table = table;
    out
}

/// Overlapping-window QB workload through the backward-field cache: the
/// repeated and sliding windows hit, only fresh windows sweep.
pub fn pr2_cache(scale: Scale) -> ExperimentOutput {
    cache_experiment(&locality_config(scale))
}

fn cache_experiment(cfg: &SyntheticConfig) -> ExperimentOutput {
    let data = synthetic::generate(cfg);
    let base = workload::paper_default_window(cfg.num_states).expect("window fits");
    let config = EngineConfig::default();

    // A dashboard-style workload: full QB scan, top-k and threshold over
    // one window, the same three on a shifted (fresh) window, then the
    // first window again — nine queries over two distinct windows.
    let shifted = ust_core::QueryWindow::new(
        base.states().clone(),
        TimeSet::interval(base.t_start() + 1, base.t_end() + 1),
    )
    .expect("non-empty");

    let mut uncached = EvalStats::new();
    let (uncached_t, _) = time(|| {
        for window in [&base, &shifted, &base] {
            query_based::evaluate(&data.db, window, &config, &mut uncached).unwrap();
            ranking::topk_query_based(&data.db, window, 10, &config, &mut uncached).unwrap();
            // The uncached threshold baseline pays its own sweep each time:
            // a throwaway single-entry cache holds nothing across queries.
            threshold::threshold_query_cached(
                &data.db,
                window,
                0.3,
                &config,
                &mut BackwardFieldCache::new(1),
                &mut uncached,
            )
            .unwrap();
        }
    });

    let mut cache = BackwardFieldCache::new(8);
    let mut cached = EvalStats::new();
    let (cached_t, _) = time(|| {
        for window in [&base, &shifted, &base] {
            query_based::evaluate_with_cache(&data.db, window, &config, &mut cache, &mut cached)
                .unwrap();
            ranking::topk_query_based_with_cache(
                &data.db,
                window,
                10,
                &config,
                &mut cache,
                &mut cached,
            )
            .unwrap();
            threshold::threshold_query_cached(
                &data.db,
                window,
                0.3,
                &config,
                &mut cache,
                &mut cached,
            )
            .unwrap();
        }
    });

    let mut table =
        ResultTable::new(["mode", "wall (s)", "backward steps", "cache hits", "cache misses"]);
    table.push_row([
        "uncached".to_string(),
        fmt_secs(uncached_t),
        uncached.backward_steps.to_string(),
        uncached.cache_hits.to_string(),
        uncached.cache_misses.to_string(),
    ]);
    table.push_row([
        "cached".to_string(),
        fmt_secs(cached_t),
        cached.backward_steps.to_string(),
        cached.cache_hits.to_string(),
        cached.cache_misses.to_string(),
    ]);

    ExperimentOutput {
        metrics: Vec::new(),
        id: "pr2_cache".into(),
        title: "PR 2 — backward-field cache on an overlapping-window QB workload".into(),
        table,
        expectation: "Nine queries over two distinct window instances: the cached run sweeps \
                      each distinct (model, window) once (2 misses, 7 hits) and its backward \
                      steps drop accordingly; results are bit-identical."
            .into(),
    }
    .with_stats_metrics("uncached", &uncached)
    .with_metric("uncached_wall_secs", uncached_t)
    .with_stats_metrics("cached", &cached)
    .with_metric("cached_wall_secs", cached_t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pr2_metrics_present_and_consistent() {
        // Tiny instances so the test stays fast; the metric names are the
        // contract BENCH_pr2.json consumers rely on.
        let cfg = SyntheticConfig::small();
        let get = |name: &str, o: &ExperimentOutput| {
            o.metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        let out = batching_experiment(&cfg);
        assert!(get("per_object_rows_traversed", &out) > get("batch32_rows_traversed", &out));
        assert_eq!(get("per_object_transitions", &out), get("batch32_transitions", &out));

        let out = cache_experiment(&cfg);
        assert!(get("cached_cache_hits", &out) >= 7.0);
        assert_eq!(get("cached_cache_misses", &out), 2.0);
        assert!(get("cached_backward_steps", &out) < get("uncached_backward_steps", &out));
    }
}
