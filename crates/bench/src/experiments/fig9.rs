//! Figure 9 — runtime w.r.t. the query start time (synthetic, Munich, NA)
//! and the accuracy comparison against the temporal-independence model.

use ust_core::engine::{independent, object_based, query_based, EngineConfig};
use ust_core::{EvalStats, QueryWindow};
use ust_data::csv::fmt_secs;
use ust_data::network_data::{self, NetworkObjectConfig};
use ust_data::workload;
use ust_data::{synthetic, ResultTable, SyntheticConfig};
use ust_space::{NetworkConfig, TimeSet};

use crate::{time, ExperimentOutput, Scale};

fn start_times(scale: Scale) -> Vec<u32> {
    match scale {
        Scale::Ci => vec![5, 15, 25, 35, 50],
        Scale::Paper => (1..=10).map(|i| i * 5).collect(),
    }
}

/// Shared sweep: runtime of OB and QB as the query window moves into the
/// future (the window keeps the paper's 6-timestamp duration).
fn start_time_sweep(
    db: &ust_core::TrajectoryDatabase,
    base_window: &QueryWindow,
    starts: &[u32],
) -> ResultTable {
    let config = EngineConfig::default();
    let mut table = ResultTable::new(["start time", "OB (s)", "QB (s)", "OB/QB"]);
    for &start in starts {
        let window = workload::with_start_time(base_window, start).expect("valid window");
        let (ob_t, _) =
            time(|| object_based::evaluate(db, &window, &config, &mut EvalStats::new()).unwrap());
        let (qb_t, _) =
            time(|| query_based::evaluate(db, &window, &config, &mut EvalStats::new()).unwrap());
        table.push_row([
            start.to_string(),
            fmt_secs(ob_t),
            fmt_secs(qb_t),
            format!("{:.0}×", ob_t / qb_t.max(1e-9)),
        ]);
    }
    table
}

/// Figure 9(a): start-time sweep on synthetic data.
pub fn fig9a(scale: Scale) -> ExperimentOutput {
    let cfg = match scale {
        Scale::Ci => {
            SyntheticConfig { num_objects: 1_000, num_states: 20_000, ..SyntheticConfig::default() }
        }
        Scale::Paper => SyntheticConfig::default(),
    };
    let data = synthetic::generate(&cfg);
    let base = workload::paper_default_window(cfg.num_states).expect("window fits");
    let table = start_time_sweep(&data.db, &base, &start_times(scale));
    ExperimentOutput {
        metrics: Vec::new(),
        id: "fig9a".into(),
        title: "Fig. 9(a) — runtime vs query start time (synthetic)".into(),
        table,
        expectation: "OB grows roughly linearly with the start time (more transitions per \
                      object, less sparse vectors); QB grows much more slowly — the gap \
                      widens with lookahead."
            .into(),
    }
}

fn network_experiment(
    id: &str,
    title: &str,
    net_cfg: NetworkConfig,
    num_objects: usize,
    starts: &[u32],
) -> ExperimentOutput {
    let dataset = network_data::generate(
        &net_cfg,
        &NetworkObjectConfig { num_objects, object_spread: 5, seed: 0x919 },
    );
    let n = dataset.network.num_nodes();
    // The paper anchors the window at node ids [100, 120]; any fixed node
    // range is equivalent under the random generator.
    let base = QueryWindow::from_states(n, 100usize..=120, TimeSet::interval(20, 25))
        .expect("window fits");
    let table = start_time_sweep(&dataset.db, &base, starts);
    ExperimentOutput {
        metrics: Vec::new(),
        id: id.into(),
        title: title.into(),
        table,
        expectation: "Same shape as the synthetic sweep on a real road graph: QB flat-ish \
                      and far below OB; road adjacency keeps the matrix extremely sparse."
            .into(),
    }
}

/// Figure 9(b): start-time sweep on the Munich-like road network.
pub fn fig9b(scale: Scale) -> ExperimentOutput {
    let (net, objects) = match scale {
        Scale::Ci => (
            NetworkConfig { num_nodes: 7_312, num_edges: 9_392, extent: 400.0, seed: 0x909B },
            1_000,
        ),
        Scale::Paper => (ust_space::network_gen::munich_like(0x909B), 10_000),
    };
    network_experiment(
        "fig9b",
        "Fig. 9(b) — runtime vs query start time (Munich road network)",
        net,
        objects,
        &start_times(scale),
    )
}

/// Figure 9(c): start-time sweep on the North-America-like road network.
pub fn fig9c(scale: Scale) -> ExperimentOutput {
    let (net, objects) = match scale {
        Scale::Ci => (
            NetworkConfig { num_nodes: 17_581, num_edges: 17_910, extent: 900.0, seed: 0x909C },
            1_000,
        ),
        Scale::Paper => (ust_space::network_gen::na_like(0x909C), 10_000),
    };
    network_experiment(
        "fig9c",
        "Fig. 9(c) — runtime vs query start time (North America road network)",
        net,
        objects,
        &start_times(scale),
    )
}

/// Figure 9(d): accuracy of the temporal-correlation model vs the
/// independence model as the query window grows.
pub fn fig9d(scale: Scale) -> ExperimentOutput {
    let cfg = match scale {
        Scale::Ci => {
            SyntheticConfig { num_objects: 500, num_states: 10_000, ..SyntheticConfig::default() }
        }
        Scale::Paper => SyntheticConfig::default(),
    };
    let data = synthetic::generate(&cfg);
    let config = EngineConfig::default();
    let mut table = ResultTable::new([
        "window timeslots",
        "avg P (with temporal correlation)",
        "avg P (without temporal correlation)",
        "relative inflation",
    ]);
    let base = workload::paper_default_window(cfg.num_states).expect("window fits");
    for len in 1..=10u32 {
        let window = workload::with_duration(&base, len).expect("valid window");
        let correct =
            query_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap();
        let indep = independent::evaluate_exists_independent(
            &data.db,
            &window,
            &config,
            &mut EvalStats::new(),
        )
        .unwrap();
        // The paper averages over objects with non-zero probability.
        let mut sum_correct = 0.0;
        let mut sum_indep = 0.0;
        let mut count = 0usize;
        for (c, i) in correct.iter().zip(&indep) {
            if c.probability > 0.0 {
                sum_correct += c.probability;
                sum_indep += i.probability;
                count += 1;
            }
        }
        let (avg_c, avg_i) = if count > 0 {
            (sum_correct / count as f64, sum_indep / count as f64)
        } else {
            (0.0, 0.0)
        };
        table.push_row([
            len.to_string(),
            format!("{avg_c:.5}"),
            format!("{avg_i:.5}"),
            format!("{:+.1}%", (avg_i / avg_c.max(1e-12) - 1.0) * 100.0),
        ]);
    }
    ExperimentOutput {
        metrics: Vec::new(),
        id: "fig9d".into(),
        title: "Fig. 9(d) — accuracy: with vs without temporal correlation".into(),
        table,
        expectation: "Ignoring temporal dependence biases the average probability, and the \
                      error grows with the query window length (the paper's justification \
                      for modeling correlations)."
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_time_sweep_rows_match_starts() {
        let data = synthetic::generate(&SyntheticConfig {
            num_objects: 10,
            num_states: 2_000,
            ..SyntheticConfig::default()
        });
        let base = workload::paper_default_window(2_000).unwrap();
        let table = start_time_sweep(&data.db, &base, &[5, 10]);
        assert_eq!(table.len(), 2);
        assert_eq!(table.rows()[0][0], "5");
        assert_eq!(table.rows()[1][0], "10");
    }

    #[test]
    fn fig9d_bias_grows_with_window() {
        // Micro-scale replica of the accuracy experiment.
        let data = synthetic::generate(&SyntheticConfig {
            num_objects: 60,
            num_states: 2_000,
            ..SyntheticConfig::default()
        });
        let config = EngineConfig::default();
        let base = workload::paper_default_window(2_000).unwrap();
        let mut gaps = Vec::new();
        for len in [1u32, 6, 10] {
            let window = workload::with_duration(&base, len).unwrap();
            let correct =
                query_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap();
            let indep = independent::evaluate_exists_independent(
                &data.db,
                &window,
                &config,
                &mut EvalStats::new(),
            )
            .unwrap();
            let gap: f64 = correct
                .iter()
                .zip(&indep)
                .map(|(c, i)| (c.probability - i.probability).abs())
                .sum();
            gaps.push(gap);
        }
        // Zero bias for single-timestamp windows; growing beyond.
        assert!(gaps[0] < 1e-9, "single-timestamp window must be unbiased");
        assert!(gaps[2] > gaps[0]);
    }
}
