//! PR 3 trajectory experiment: the long-lived worker pool and the
//! shared-field plan on the sharded query-based workload, measured in
//! operation counts (deterministic across machines) plus wall clock.
//!
//! Three claims are made observable:
//!
//! 1. **Shared-field dedup** — each `(model, window)` backward field is
//!    swept at most once per query regardless of `num_threads`
//!    (`backward steps` stays flat across the thread sweep), whereas a
//!    per-worker re-sweep — the duplication ROADMAP.md flagged under
//!    "worker-aware QB sharding" — pays `threads ×` that count (the
//!    `naive re-sweep` column).
//! 2. **Cache-backed plans** — routing the plan through a lock-guarded
//!    `BackwardFieldCache` drops the backward steps of repeated windows to
//!    zero (the `*_cached_*` metrics).
//! 3. **Pool reuse** — running a query burst on one long-lived
//!    [`WorkerPool`] avoids the per-query thread spawn/join of the old
//!    scoped-thread executor (the `pooled_burst_wall_secs` vs
//!    `respawn_burst_wall_secs` metrics).

use std::sync::{Arc, Mutex};

use ust_core::engine::cache::BackwardFieldCache;
use ust_core::engine::query_based::{self, SharedFieldPlan};
use ust_core::engine::EngineConfig;
use ust_core::parallel::{
    evaluate_exists_qb_cached_on, evaluate_exists_qb_on, ShardedExecutor, WorkerPool,
};
use ust_core::EvalStats;
use ust_data::csv::fmt_secs;
use ust_data::workload;
use ust_data::{synthetic, ResultTable, SyntheticConfig};

use crate::{time, ExperimentOutput, Scale};

/// The fig11 locality workload — the same dataset the `pr2_*` experiments
/// use, so the trajectory files stay comparable.
fn locality_config(scale: Scale) -> SyntheticConfig {
    super::fig11::base_config(scale)
}

/// Worker-pool + shared-field-plan experiment on the sharded QB workload.
pub fn pr3_pool(scale: Scale) -> ExperimentOutput {
    pool_experiment(&locality_config(scale))
}

fn pool_experiment(cfg: &SyntheticConfig) -> ExperimentOutput {
    let data = synthetic::generate(cfg);
    let window = workload::paper_default_window(cfg.num_states).expect("window fits");

    // Sequential reference: the bits every pooled run must reproduce.
    let mut seq_stats = EvalStats::new();
    let baseline =
        query_based::evaluate(&data.db, &window, &EngineConfig::default(), &mut seq_stats).unwrap();

    let mut table = ResultTable::new([
        "threads",
        "wall (s)",
        "backward steps",
        "naive re-sweep steps",
        "fields shared",
    ]);
    let mut out = ExperimentOutput {
        metrics: Vec::new(),
        id: "pr3_pool".into(),
        title: "PR 3 — worker pool + shared-field plan on the sharded QB workload \
                (fig11 locality dataset)"
            .into(),
        table: ResultTable::new([""]),
        expectation: "Backward steps stay flat across the thread sweep (each (model, window) \
                      field is swept exactly once per query and shared read-only across the \
                      workers), while a naive per-worker re-sweep pays threads × that count. \
                      Results are bit-identical to sequential at every thread count; the \
                      cached plan serves the repeated-window burst with zero backward steps \
                      after the first query; reusing one long-lived pool beats respawning a \
                      pool per query on the same burst."
            .into(),
    }
    .with_stats_metrics("sequential", &seq_stats);

    for threads in [1usize, 2, 4, 8] {
        let config = EngineConfig::default().with_num_threads(threads);
        // The 1-thread row is the inline no-pool baseline (a 1-worker pool
        // would idle: the executor runs single shards on the caller).
        let executor = if threads == 1 {
            ShardedExecutor::sequential()
        } else {
            ShardedExecutor::on_pool(Arc::new(WorkerPool::new(threads)))
        };
        let mut stats = EvalStats::new();
        let (wall, results) = time(|| {
            evaluate_exists_qb_on(&executor, &data.db, &window, &config, &mut stats).unwrap()
        });
        assert!(
            baseline
                .iter()
                .zip(&results)
                .all(|(a, b)| a.probability.to_bits() == b.probability.to_bits()),
            "pooled QB must be bit-identical to sequential"
        );
        // What a per-worker re-sweep would cost: every worker whose shard
        // touches the model pays the full field sweep again.
        let mut naive = EvalStats::new();
        for _ in 0..threads {
            SharedFieldPlan::prepare(&data.db, &window, &config, &mut naive).unwrap();
        }
        table.push_row([
            if threads == 1 { "1 (inline)".to_string() } else { threads.to_string() },
            fmt_secs(wall),
            stats.backward_steps.to_string(),
            naive.backward_steps.to_string(),
            stats.fields_shared.to_string(),
        ]);
        out = out
            .with_stats_metrics(&format!("threads{threads}"), &stats)
            .with_metric(format!("threads{threads}_wall_secs"), wall)
            .with_metric(
                format!("threads{threads}_naive_backward_steps"),
                naive.backward_steps as f64,
            );
    }

    // A repeated-window burst through the cache-backed plan: the first
    // query sweeps and caches, the rest are pure hits (zero backward work).
    const BURST: usize = 8;
    let config = EngineConfig::default().with_num_threads(4);
    let pool = Arc::new(WorkerPool::new(4));
    let executor = ShardedExecutor::on_pool(Arc::clone(&pool));
    let cache = Mutex::new(BackwardFieldCache::new(8));
    let mut cached_stats = EvalStats::new();
    let (pooled_wall, _) = time(|| {
        for _ in 0..BURST {
            evaluate_exists_qb_cached_on(
                &executor,
                &data.db,
                &window,
                &config,
                &cache,
                &mut cached_stats,
            )
            .unwrap();
        }
    });
    // The same burst with a pool spawned and joined per query — the
    // per-query scoped-thread architecture this PR replaces.
    let (respawn_wall, _) = time(|| {
        for _ in 0..BURST {
            let pool = Arc::new(WorkerPool::new(4));
            let executor = ShardedExecutor::on_pool(pool);
            evaluate_exists_qb_cached_on(
                &executor,
                &data.db,
                &window,
                &config,
                &cache,
                &mut EvalStats::new(),
            )
            .unwrap();
        }
    });

    out.table = table;
    out.with_stats_metrics("cached_burst", &cached_stats)
        .with_metric("burst_queries", BURST as f64)
        .with_metric("pooled_burst_wall_secs", pooled_wall)
        .with_metric("respawn_burst_wall_secs", respawn_wall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pr3_metrics_present_and_consistent() {
        // Tiny instances so the test stays fast; the metric names are the
        // contract BENCH_pr3.json consumers rely on.
        let cfg = SyntheticConfig::small();
        let out = pool_experiment(&cfg);
        let get = |name: &str| {
            out.metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        let base = get("threads1_backward_steps");
        assert!(base > 0.0);
        for threads in [2, 4, 8] {
            assert_eq!(
                get(&format!("threads{threads}_backward_steps")),
                base,
                "each field must be swept at most once per query at {threads} threads"
            );
            assert_eq!(
                get(&format!("threads{threads}_naive_backward_steps")),
                base * threads as f64,
                "the naive per-worker re-sweep pays threads × the shared sweep"
            );
            assert!(get(&format!("threads{threads}_fields_shared")) >= 1.0);
        }
        // One miss, BURST-1 pure hits: exactly one sweep for the burst.
        assert_eq!(get("cached_burst_backward_steps"), base);
        assert_eq!(get("cached_burst_cache_misses"), 1.0);
        assert_eq!(get("cached_burst_cache_hits"), get("burst_queries") - 1.0);
    }
}
