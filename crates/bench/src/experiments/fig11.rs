//! Figure 11 — sensitivity to the locality parameters of the synthetic
//! generator: `max_step` (how far one transition can jump) and
//! `state_spread` (how many successors each state has).

use ust_core::engine::{object_based, query_based, EngineConfig};
use ust_core::EvalStats;
use ust_data::csv::fmt_secs;
use ust_data::workload;
use ust_data::{synthetic, ResultTable, SyntheticConfig};

use crate::{time, ExperimentOutput, Scale};

/// The fig11 locality dataset shape, shared with the `pr2_batching` /
/// `pr2_cache` experiments so "the fig11 locality workload" stays one
/// definition.
pub(crate) fn base_config(scale: Scale) -> SyntheticConfig {
    match scale {
        Scale::Ci => {
            SyntheticConfig { num_objects: 1_000, num_states: 10_000, ..SyntheticConfig::default() }
        }
        Scale::Paper => SyntheticConfig::default(),
    }
}

fn sweep(configs: impl Iterator<Item = (String, SyntheticConfig)>) -> ResultTable {
    let engine = EngineConfig::default();
    let mut table = ResultTable::new(["parameter", "OB (s)", "QB (s)"]);
    for (label, cfg) in configs {
        let data = synthetic::generate(&cfg);
        let window = workload::paper_default_window(cfg.num_states).expect("window fits");
        let (ob_t, _) = time(|| {
            object_based::evaluate(&data.db, &window, &engine, &mut EvalStats::new()).unwrap()
        });
        let (qb_t, _) = time(|| {
            query_based::evaluate(&data.db, &window, &engine, &mut EvalStats::new()).unwrap()
        });
        table.push_row([label, fmt_secs(ob_t), fmt_secs(qb_t)]);
    }
    table
}

/// Figure 11(a): impact of `max_step` (10..100).
pub fn fig11a(scale: Scale) -> ExperimentOutput {
    let base = base_config(scale);
    let steps: Vec<usize> = match scale {
        Scale::Ci => vec![10, 40, 70, 100],
        Scale::Paper => (1..=10).map(|i| i * 10).collect(),
    };
    let table = sweep(
        steps
            .into_iter()
            .map(|max_step| (max_step.to_string(), SyntheticConfig { max_step, ..base })),
    );
    ExperimentOutput {
        metrics: Vec::new(),
        id: "fig11a".into(),
        title: "Fig. 11(a) — impact of max_step on OB and QB".into(),
        table,
        expectation: "Both algorithms scale at most linearly with max_step (wider bands \
                      densify the propagation vectors faster)."
            .into(),
    }
}

/// Figure 11(b): impact of `state_spread` (2..20).
pub fn fig11b(scale: Scale) -> ExperimentOutput {
    let base = base_config(scale);
    let spreads: Vec<usize> = match scale {
        Scale::Ci => vec![2, 8, 14, 20],
        Scale::Paper => (1..=10).map(|i| i * 2).collect(),
    };
    let table =
        sweep(spreads.into_iter().map(|state_spread| {
            (state_spread.to_string(), SyntheticConfig { state_spread, ..base })
        }));
    ExperimentOutput {
        metrics: Vec::new(),
        id: "fig11b".into(),
        title: "Fig. 11(b) — impact of state_spread on OB and QB".into(),
        table,
        expectation: "At most linear growth for both algorithms: state_spread multiplies \
                      the non-zeros per matrix row (and QB's per-step cost directly)."
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_label_per_config() {
        let base =
            SyntheticConfig { num_objects: 10, num_states: 1_000, ..SyntheticConfig::default() };
        let table = sweep(
            [10usize, 20]
                .into_iter()
                .map(|m| (m.to_string(), SyntheticConfig { max_step: m, ..base })),
        );
        assert_eq!(table.len(), 2);
        assert_eq!(table.rows()[0][0], "10");
    }
}
