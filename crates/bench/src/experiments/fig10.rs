//! Figure 10 — runtime of the three query predicates (∃, ∀, k-times) as a
//! function of the query window length, for both evaluation strategies.

use ust_core::engine::{forall, ktimes, object_based, query_based, EngineConfig};
use ust_core::EvalStats;
use ust_data::csv::fmt_secs;
use ust_data::workload;
use ust_data::{synthetic, ResultTable, SyntheticConfig, SyntheticDataset};

use crate::{time, ExperimentOutput, Scale};

fn dataset(scale: Scale) -> SyntheticDataset {
    let cfg = match scale {
        Scale::Ci => {
            SyntheticConfig { num_objects: 500, num_states: 10_000, ..SyntheticConfig::default() }
        }
        Scale::Paper => SyntheticConfig::default(),
    };
    synthetic::generate(&cfg)
}

fn window_lengths(scale: Scale) -> Vec<u32> {
    match scale {
        Scale::Ci => vec![1, 3, 5, 7, 10],
        Scale::Paper => (1..=10).collect(),
    }
}

/// Figure 10(a): OB runtime of PST∃Q / PST∀Q / PSTkQ vs window length.
pub fn fig10a(scale: Scale) -> ExperimentOutput {
    let data = dataset(scale);
    let config = EngineConfig::default();
    let base = workload::paper_default_window(data.config.num_states).expect("window fits");
    let mut table = ResultTable::new(["window timeslots", "∃OB (s)", "∀OB (s)", "kOB (s)"]);
    for len in window_lengths(scale) {
        let window = workload::with_duration(&base, len).expect("valid");
        let (e_t, _) = time(|| {
            object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
        });
        let (a_t, _) = time(|| {
            forall::evaluate_object_based(&data.db, &window, &config, &mut EvalStats::new())
                .unwrap()
        });
        let (k_t, _) = time(|| {
            ktimes::evaluate_object_based(&data.db, &window, &config, &mut EvalStats::new())
                .unwrap()
        });
        table.push_row([len.to_string(), fmt_secs(e_t), fmt_secs(a_t), fmt_secs(k_t)]);
    }
    ExperimentOutput {
        metrics: Vec::new(),
        id: "fig10a".into(),
        title: "Fig. 10(a) — OB runtime of the three predicates vs window length".into(),
        table,
        expectation: "PSTkQ is the most expensive (it maintains |T▫|+1 vectors per object); \
                      PST∃Q and PST∀Q stay close to each other (the paper found them equal \
                      in all settings)."
            .into(),
    }
}

/// Figure 10(b): QB runtime of the three predicates vs window length.
pub fn fig10b(scale: Scale) -> ExperimentOutput {
    let data = dataset(scale);
    let config = EngineConfig::default();
    let base = workload::paper_default_window(data.config.num_states).expect("window fits");
    let mut table = ResultTable::new(["window timeslots", "∃QB (s)", "∀QB (s)", "kQB (s)"]);
    for len in window_lengths(scale) {
        let window = workload::with_duration(&base, len).expect("valid");
        let (e_t, _) = time(|| {
            query_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
        });
        let (a_t, _) = time(|| {
            forall::evaluate_query_based(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
        });
        let (k_t, _) = time(|| {
            ktimes::evaluate_query_based(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
        });
        table.push_row([len.to_string(), fmt_secs(e_t), fmt_secs(a_t), fmt_secs(k_t)]);
    }
    ExperimentOutput {
        metrics: Vec::new(),
        id: "fig10b".into(),
        title: "Fig. 10(b) — QB runtime of the three predicates vs window length".into(),
        table,
        expectation: "All predicates run in fractions of a second under QB; the k-times \
                      variant scales roughly linearly with the window length (one backward \
                      level vector per possible count)."
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ust_core::QueryWindow;
    use ust_space::TimeSet;

    #[test]
    fn predicates_are_mutually_consistent_on_micro_data() {
        // The identity P∃ = 1 − P(k=0) and P∀ = P(k=|T▫|) must hold on the
        // generated synthetic data for both strategies.
        let data = synthetic::generate(&SyntheticConfig {
            num_objects: 15,
            num_states: 1_500,
            ..SyntheticConfig::default()
        });
        let config = EngineConfig::default();
        let window =
            QueryWindow::from_states(1_500, 100usize..=120, TimeSet::interval(8, 11)).unwrap();
        let exists =
            object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap();
        let forall_r =
            forall::evaluate_query_based(&data.db, &window, &config, &mut EvalStats::new())
                .unwrap();
        let kdist =
            ktimes::evaluate_object_based(&data.db, &window, &config, &mut EvalStats::new())
                .unwrap();
        for ((e, a), k) in exists.iter().zip(&forall_r).zip(&kdist) {
            assert!((e.probability - k.prob_at_least_once()).abs() < 1e-9);
            assert!((a.probability - k.prob_always()).abs() < 1e-9);
        }
    }
}
