//! PR 7 index experiments: the spatio-temporal candidate index
//! (reachability-cone R-tree × observation-span interval index) wired into
//! the planner, measured on a clustered-placement workload at 10⁵–10⁶
//! objects. A *selective* window deep in the sparse countryside should
//! answer in sub-millisecond wall time once the prefilter discards the
//! city; a *broad* window over the city keeps the index honest about its
//! overhead. Answers are asserted bit-identical across prefilter modes.

use std::sync::Arc;

use ust_core::{EngineConfig, EvalStats, PrefilterMode, Query, QueryWindow};
use ust_core::{QueryProcessor, Strategy};
use ust_data::csv::fmt_secs;
use ust_data::{generate_index_workload, IndexWorkload, IndexWorkloadConfig, ResultTable};

use crate::{time, ExperimentOutput, Scale};

fn workload_config(scale: Scale) -> IndexWorkloadConfig {
    match scale {
        // 10⁵ objects: the floor the acceptance criteria measure at.
        Scale::Ci => IndexWorkloadConfig::default(),
        // 10⁶ objects over the same space: ten city objects per state.
        Scale::Paper => IndexWorkloadConfig { num_objects: 1_000_000, ..Default::default() },
    }
}

/// Index-accelerated pruning vs the exact engines on a clustered
/// 10⁵–10⁶ object database: selective queries drop to sub-millisecond,
/// broad queries stay within noise, answers are bit-identical.
pub fn pr7_index(scale: Scale) -> ExperimentOutput {
    index_experiment(&workload_config(scale))
}

/// One prefilter mode × window measurement: counters from a cold first
/// run, wall time as the minimum over warm repeats (the backward-field
/// cache warms identically in every mode, so warm walls compare fairly).
fn run_mode(
    data: &IndexWorkload,
    window: &QueryWindow,
    mode: PrefilterMode,
) -> (f64, EvalStats, Vec<u64>) {
    let processor =
        QueryProcessor::with_config(&data.db, EngineConfig::default().with_prefilter(mode));
    // Auto could legally pick different strategies per mode (the pruned
    // candidate count feeds the cost model); force query-based so the
    // bit-identity comparison compares like with like.
    let spec = Query::exists()
        .window(window.clone())
        .strategy(Strategy::QueryBased)
        .probabilities()
        .build()
        .expect("spec is valid");
    let mut stats = EvalStats::new();
    let answer = processor.execute_with_stats(&spec, &mut stats).expect("query succeeds");
    let bits: Vec<u64> = answer
        .probabilities()
        .expect("probabilities answer")
        .iter()
        .map(|p| p.probability.to_bits())
        .collect();
    let mut wall = f64::INFINITY;
    for _ in 0..5 {
        let (t, _) = time(|| processor.execute(&spec).expect("query succeeds"));
        wall = wall.min(t);
    }
    (wall, stats, bits)
}

fn index_experiment(cfg: &IndexWorkloadConfig) -> ExperimentOutput {
    let mut data = generate_index_workload(cfg);
    let space = data.space;
    data.db.attach_space(Arc::new(space)).expect("space matches the database dimension");
    let (build_secs, _) = time(|| data.db.spatial_index().expect("space attached"));

    let mut table =
        ResultTable::new(["window / prefilter", "wall (s)", "examined", "pruned", "bit-identical"]);
    let mut out = ExperimentOutput {
        metrics: Vec::new(),
        id: "pr7_index".into(),
        title: format!(
            "PR 7 — spatio-temporal index pruning over {} clustered objects",
            cfg.num_objects
        ),
        table: ResultTable::new([""]),
        expectation: "With the prefilter On (or Auto) the selective countryside window \
                      examines a vanishing fraction of the database — at least 100× fewer \
                      candidates than Off — and answers in sub-millisecond wall time, while \
                      the broad city window keeps most candidates and pays only the cost of \
                      one index sweep (about a millisecond at 10⁵ objects, small relative \
                      to its evaluation). Probabilities are bit-identical in every mode."
            .into(),
    }
    .with_metric("num_objects", cfg.num_objects as f64)
    .with_metric("index_build_secs", build_secs);

    let windows = [
        ("selective", data.selective_window().expect("window fits")),
        ("broad", data.broad_window().expect("window fits")),
    ];
    let modes =
        [("off", PrefilterMode::Off), ("on", PrefilterMode::On), ("auto", PrefilterMode::Auto)];
    for (win_label, window) in &windows {
        let mut baseline: Option<Vec<u64>> = None;
        for (mode_label, mode) in modes {
            let (wall, stats, bits) = run_mode(&data, window, mode);
            let identical = match &baseline {
                None => {
                    baseline = Some(bits);
                    true
                }
                Some(base) => base == &bits,
            };
            assert!(identical, "{win_label}/{mode_label}: answers must be bit-identical");
            table.push_row([
                format!("{win_label} ({mode_label})"),
                fmt_secs(wall),
                stats.candidates_examined.to_string(),
                stats.candidates_pruned.to_string(),
                "yes".into(),
            ]);
            let prefix = format!("{win_label}_{mode_label}");
            out = out
                .with_stats_metrics(&prefix, &stats)
                .with_metric(format!("{prefix}_wall_secs"), wall);
        }
        out = out.with_metric(format!("{win_label}_bit_identical"), 1.0);
    }

    out.table = table;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pr7_metrics_present_and_pruning_effective() {
        // Tiny instance; the metric names are the contract BENCH_pr7.json
        // (and the CI assertion step) rely on.
        let out = index_experiment(&IndexWorkloadConfig::small());
        let get = |name: &str| {
            out.metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        assert_eq!(get("selective_bit_identical"), 1.0);
        assert_eq!(get("broad_bit_identical"), 1.0);
        // Off examines the whole database; On prunes the countryside
        // window down to a handful of nearby objects.
        assert_eq!(get("selective_off_candidates_examined"), get("num_objects"));
        assert!(
            get("selective_on_candidates_examined") < get("selective_off_candidates_examined"),
            "prefilter must reduce the examined candidate set"
        );
        assert_eq!(
            get("selective_on_candidates_examined") + get("selective_on_candidates_pruned"),
            get("num_objects")
        );
        assert!(get("selective_on_wall_secs") >= 0.0);
        assert!(get("index_build_secs") >= 0.0);
    }
}
