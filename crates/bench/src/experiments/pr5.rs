//! PR 5 trajectory experiment: admission-controlled async serving.
//!
//! Three claims are made observable:
//!
//! 1. **Depth bounds shed overload without blocking** — an unbounded
//!    processor accepts a whole burst; a depth-bounded one admits at most
//!    `max_queue_depth` pending queries and rejects the overflow with
//!    `QueueFull` while the submit loop still returns in microseconds
//!    (`bounded_submit_wall_secs` vs `blocking_wall_secs`). The serving
//!    metrics account for every submission
//!    (`submitted == accepted + rejected`).
//! 2. **Deadlines shed stale work** — with a zero deadline every admitted
//!    job is shed before execution (`deadline_shed` equals the accepted
//!    count) instead of burning worker time on abandoned requests.
//! 3. **The calibration loop closes** — running a bound-decorated
//!    workload under `calibrate_planner` replaces the flat ×0.5 discount
//!    with the measured step ratio (`learned_ob_discount`), and the
//!    calibrated plan stays the argmin of its own estimates
//!    (`calibrated_consistent`); `calibrated_flipped` records whether the
//!    learned ratio changed the strategy choice on this workload.

use ust_core::engine::EngineConfig;
use ust_core::{Query, QueryError, QueryProcessor, QuerySpec, Strategy};
use ust_data::workload;
use ust_data::{synthetic, ResultTable, SyntheticConfig};

use crate::{time, ExperimentOutput, Scale};

/// The fig11 locality workload — the same dataset the `pr2..pr4`
/// experiments use, so the trajectory files stay comparable.
fn locality_config(scale: Scale) -> SyntheticConfig {
    super::fig11::base_config(scale)
}

/// Admission-control + serving-metrics experiment.
pub fn pr5_admission(scale: Scale) -> ExperimentOutput {
    admission_experiment(&locality_config(scale))
}

fn admission_experiment(cfg: &SyntheticConfig) -> ExperimentOutput {
    const BURST: usize = 16;
    const DEPTH: usize = 4;
    let window = workload::paper_default_window(cfg.num_states).expect("window fits");
    let data = synthetic::generate(cfg);
    let specs: Vec<QuerySpec> = (0..BURST as u32)
        .map(|i| {
            let shifted = workload::with_start_time(&window, 18 + i).expect("window fits");
            Query::exists().window(shifted).strategy(Strategy::QueryBased).build().unwrap()
        })
        .collect();

    let mut out = ExperimentOutput {
        metrics: Vec::new(),
        id: "pr5_admission".into(),
        title: "PR 5 — admission-controlled async serving: depth-bounded bursts, deadline \
                shedding, and the EWMA-calibrated planner on the fig11 locality dataset"
            .into(),
        table: ResultTable::new([""]),
        expectation: "A depth-bounded processor admits at most max_queue_depth pending \
                      submissions and rejects the rest with QueueFull while the submit loop \
                      returns in microseconds (vs the blocking loop's full evaluation wall); \
                      the serving metrics account for every submission. A zero deadline sheds \
                      every admitted job before execution. Training a bound-decorated \
                      workload under calibrate_planner replaces the flat ×0.5 discount with \
                      the measured step ratio, and the calibrated plan remains the argmin of \
                      its own estimates."
            .into(),
    };
    let mut table =
        ResultTable::new(["mode", "accepted", "rejected", "submit wall", "complete wall"]);

    // --- 1a. Blocking baseline ------------------------------------------
    let blocking =
        QueryProcessor::with_config(&data.db, EngineConfig::default().with_num_threads(4));
    let (blocking_wall, blocking_answers) =
        time(|| specs.iter().map(|s| blocking.execute(s).unwrap()).collect::<Vec<_>>());
    out = out
        .with_metric("burst_queries", BURST as f64)
        .with_metric("blocking_wall_secs", blocking_wall);

    // --- 1b. Unbounded burst --------------------------------------------
    let unbounded =
        QueryProcessor::with_config(&data.db, EngineConfig::default().with_num_threads(4));
    let (unbounded_wall, (unbounded_submit, unbounded_answers)) = time(|| {
        let (submit_wall, tickets) = time(|| {
            specs.iter().map(|s| unbounded.submit(s).expect("unbounded")).collect::<Vec<_>>()
        });
        (submit_wall, tickets.into_iter().map(|t| t.wait().unwrap()).collect::<Vec<_>>())
    });
    assert_eq!(unbounded_answers, blocking_answers, "async ≡ blocking, bit for bit");
    let m = unbounded.metrics();
    assert_eq!(m.submitted, BURST as u64);
    assert_eq!(m.rejected, 0, "no bound, no rejections");
    table.push_row([
        "unbounded".into(),
        m.accepted.to_string(),
        m.rejected.to_string(),
        ust_data::csv::fmt_secs(unbounded_submit),
        ust_data::csv::fmt_secs(unbounded_wall),
    ]);
    out = out
        .with_metric("unbounded_submit_wall_secs", unbounded_submit)
        .with_metric("unbounded_wall_secs", unbounded_wall)
        .with_metric("unbounded_accepted", m.accepted as f64);

    // --- 1c. Depth-bounded burst ----------------------------------------
    let bounded = QueryProcessor::with_config(
        &data.db,
        EngineConfig::default().with_num_threads(4).with_max_queue_depth(DEPTH),
    );
    // Pair each admitted ticket with its own spec at admission time:
    // workers may drain slots mid-burst, so the admitted set need not be
    // a prefix of the burst.
    let mut admitted: Vec<(&QuerySpec, _)> = Vec::new();
    let mut rejected = 0u64;
    let (bounded_submit, ()) = time(|| {
        for spec in &specs {
            match bounded.submit(spec) {
                Ok(t) => admitted.push((spec, t)),
                Err(QueryError::QueueFull { .. }) => rejected += 1,
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    });
    let (bounded_wall, ()) = time(|| {
        for (spec, ticket) in admitted.drain(..) {
            let answer = ticket.wait().unwrap();
            let reference = blocking.execute(spec).unwrap();
            assert_eq!(answer, reference, "admitted tickets ≡ execute");
        }
    });
    let m = bounded.metrics();
    assert_eq!(m.submitted, BURST as u64);
    assert_eq!(m.accepted + m.rejected, m.submitted, "every submission is accounted");
    assert_eq!(m.rejected, rejected);
    assert!(rejected > 0, "a {BURST}-burst must overflow a depth-{DEPTH} bound");
    assert!(
        bounded_submit < blocking_wall,
        "rejection is backpressure, not blocking: the bounded submit loop must return \
         before a blocking loop would"
    );
    table.push_row([
        format!("depth={DEPTH}"),
        m.accepted.to_string(),
        m.rejected.to_string(),
        ust_data::csv::fmt_secs(bounded_submit),
        ust_data::csv::fmt_secs(bounded_wall),
    ]);
    out = out
        .with_metric("bounded_depth", DEPTH as f64)
        .with_metric("bounded_submit_wall_secs", bounded_submit)
        .with_metric("bounded_wall_secs", bounded_wall)
        .with_metric("bounded_accepted", m.accepted as f64)
        .with_metric("bounded_rejected", m.rejected as f64);

    // --- 2. Deadline shedding -------------------------------------------
    let impatient = QueryProcessor::with_config(
        &data.db,
        EngineConfig::default()
            .with_num_threads(2)
            .with_default_deadline(std::time::Duration::ZERO),
    );
    let shed_tickets: Vec<_> =
        specs.iter().take(4).map(|s| impatient.submit(s).expect("unbounded")).collect();
    let mut shed = 0u64;
    for ticket in shed_tickets {
        match ticket.wait() {
            Err(QueryError::DeadlineExceeded) => shed += 1,
            other => panic!("zero deadline must shed, got {other:?}"),
        }
    }
    let m = impatient.metrics();
    assert_eq!(m.deadline_expired, shed);
    out = out.with_metric("deadline_shed", shed as f64);

    // --- 3. EWMA calibration --------------------------------------------
    let bounded_spec = Query::exists().window(window.clone()).top_k(4).build().unwrap();
    let flat = QueryProcessor::new(&data.db);
    let flat_plan = flat.explain(&bounded_spec).unwrap();
    let trained = QueryProcessor::with_config(
        &data.db,
        EngineConfig::default().with_planner_calibration(true),
    );
    for _ in 0..3 {
        trained.execute(&bounded_spec).unwrap();
    }
    let calibrated_plan = trained.explain(&bounded_spec).unwrap();
    assert!(calibrated_plan.calibrated, "bounded runs must feed the EWMA");
    let consistent = match calibrated_plan.strategy {
        Strategy::QueryBased => {
            calibrated_plan.query_based.total() <= calibrated_plan.object_based.total()
        }
        _ => calibrated_plan.object_based.total() < calibrated_plan.query_based.total(),
    };
    assert!(consistent, "the calibrated choice must be the argmin of its own estimates");
    out.table = table;
    out.with_metric("flat_ob_discount", flat_plan.ob_discount)
        .with_metric("learned_ob_discount", calibrated_plan.ob_discount)
        .with_metric("learned_qb_discount", calibrated_plan.qb_discount)
        .with_metric("calibrated_consistent", 1.0)
        .with_metric(
            "calibrated_flipped",
            (calibrated_plan.strategy != flat_plan.strategy) as u64 as f64,
        )
        .with_metric(
            "calibrated_chose_qb",
            (calibrated_plan.strategy == Strategy::QueryBased) as u64 as f64,
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pr5_metrics_present_and_consistent() {
        let cfg = SyntheticConfig::small();
        let out = admission_experiment(&cfg);
        let get = |name: &str| {
            out.metrics
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing metric {name}"))
                .1
        };
        assert_eq!(get("burst_queries"), 16.0);
        assert_eq!(get("bounded_depth"), 4.0);
        assert_eq!(get("bounded_accepted") + get("bounded_rejected"), 16.0);
        assert!(get("bounded_rejected") > 0.0);
        assert!(get("bounded_submit_wall_secs") < get("blocking_wall_secs"));
        assert_eq!(get("deadline_shed"), 4.0);
        assert_eq!(get("flat_ob_discount"), 0.5);
        assert!(get("learned_ob_discount") > 0.0);
        assert!(get("learned_qb_discount") > 0.0);
        assert_eq!(get("calibrated_consistent"), 1.0);
        assert!(!out.table.is_empty());
    }
}
