//! PR 4 trajectory experiment: the unified query spec + planner and the
//! asynchronous submission front door, measured in operation counts
//! (deterministic across machines) plus wall clock.
//!
//! Three claims are made observable:
//!
//! 1. **The planner tracks the cheaper strategy** — across database sizes
//!    on the fig11 locality workload, `Strategy::Auto` resolves to
//!    object-based for tiny object populations and to query-based once
//!    the backward sweep amortizes, and the planned answer is
//!    bit-identical to both forced strategies' values (the
//!    `d*_auto_matches` metrics assert per-size identity with the chosen
//!    strategy).
//! 2. **The k-times level-field cache works** — a repeated PSTkQ window
//!    pays its `(|T▫|+1)`-level backward sweep once: the second run is a
//!    pure cache hit with zero backward steps (`ktimes_warm_*` metrics).
//! 3. **Async submission frees the caller immediately** — submitting a
//!    burst of query-based windows to a pooled processor costs
//!    microseconds (`burst_submit_wall_secs`), while the blocking loop
//!    holds the caller for every query's full evaluation
//!    (`blocking_wall_secs`); total completion (`burst_wall_secs`) is
//!    bit-identical work whose sweeps overlap across workers on
//!    multi-core hosts (on a single-core CI host the completion walls are
//!    comparable — the cache lock no longer serializes distinct-window
//!    sweeps, but there is only one core to overlap them on).

use ust_core::engine::EngineConfig;
use ust_core::{EvalStats, Query, QueryAnswer, QueryProcessor, QuerySpec, Strategy};
use ust_data::csv::fmt_secs;
use ust_data::workload;
use ust_data::{synthetic, ResultTable, SyntheticConfig};

use crate::{time, ExperimentOutput, Scale};

/// The fig11 locality workload — the same dataset the `pr2_*`/`pr3_*`
/// experiments use, so the trajectory files stay comparable.
fn locality_config(scale: Scale) -> SyntheticConfig {
    super::fig11::base_config(scale)
}

/// Planner + async-front-door experiment on the fig11 locality workload.
pub fn pr4_planner(scale: Scale) -> ExperimentOutput {
    planner_experiment(&locality_config(scale))
}

fn probabilities(answer: &QueryAnswer) -> &[ust_core::ObjectProbability] {
    answer.probabilities().expect("probabilities decorator")
}

fn planner_experiment(cfg: &SyntheticConfig) -> ExperimentOutput {
    let window = workload::paper_default_window(cfg.num_states).expect("window fits");
    let mut table = ResultTable::new([
        "|D|",
        "auto chose",
        "OB est (ops)",
        "QB est (ops)",
        "OB wall",
        "QB wall",
        "auto wall",
    ]);
    let mut out = ExperimentOutput {
        metrics: Vec::new(),
        id: "pr4_planner".into(),
        title: "PR 4 — query planner (Auto vs forced strategies) and async burst \
                submission on the fig11 locality dataset"
            .into(),
        table: ResultTable::new([""]),
        expectation: "Auto resolves to object-based for tiny object populations and to \
                      query-based once the backward sweep amortizes over the database; \
                      planned answers are bit-identical to the chosen forced strategy at \
                      every size. The k-times level-field cache serves a repeated PSTkQ \
                      window with zero backward steps. Submitting a query burst \
                      asynchronously frees the caller after microseconds (vs the blocking \
                      loop's full evaluation walls); completion work is identical and \
                      overlaps across workers when cores allow."
            .into(),
    };

    // --- 1. Auto vs forced strategies across database sizes --------------
    for objects in [1usize, 32, cfg.num_objects] {
        let data = synthetic::generate(&SyntheticConfig { num_objects: objects, ..*cfg });
        let processor = QueryProcessor::new(&data.db);
        let auto_spec = Query::exists().window(window.clone()).build().unwrap();
        let plan = processor.explain(&auto_spec).unwrap();

        let mut auto_stats = EvalStats::new();
        let (auto_wall, auto_answer) =
            time(|| processor.execute_with_stats(&auto_spec, &mut auto_stats).unwrap());

        let mut walls = Vec::new();
        for strategy in [Strategy::ObjectBased, Strategy::QueryBased] {
            // A fresh processor per forced run: cold caches, fair walls.
            let forced_processor = QueryProcessor::new(&data.db);
            let forced = Query::exists().window(window.clone()).strategy(strategy).build().unwrap();
            let mut stats = EvalStats::new();
            let (wall, answer) =
                time(|| forced_processor.execute_with_stats(&forced, &mut stats).unwrap());
            if strategy == plan.strategy {
                let same = probabilities(&auto_answer)
                    .iter()
                    .zip(probabilities(&answer))
                    .all(|(a, b)| a.probability.to_bits() == b.probability.to_bits());
                assert!(same, "Auto must be bit-identical to its chosen strategy");
                out = out.with_metric(format!("d{objects}_auto_matches"), 1.0);
            }
            out = out
                .with_metric(
                    format!(
                        "d{objects}_{}_wall_secs",
                        if strategy == Strategy::ObjectBased { "ob" } else { "qb" }
                    ),
                    wall,
                )
                .with_stats_metrics(
                    &format!(
                        "d{objects}_{}",
                        if strategy == Strategy::ObjectBased { "ob" } else { "qb" }
                    ),
                    &stats,
                );
            walls.push(wall);
        }
        table.push_row([
            objects.to_string(),
            format!("{:?}", plan.strategy),
            format!("{:.0}", plan.object_based.total()),
            format!("{:.0}", plan.query_based.total()),
            fmt_secs(walls[0]),
            fmt_secs(walls[1]),
            fmt_secs(auto_wall),
        ]);
        out = out
            .with_metric(
                format!("d{objects}_auto_chose_qb"),
                (plan.strategy == Strategy::QueryBased) as u64 as f64,
            )
            .with_metric(format!("d{objects}_ob_est_ops"), plan.object_based.total())
            .with_metric(format!("d{objects}_qb_est_ops"), plan.query_based.total())
            .with_metric(format!("d{objects}_auto_wall_secs"), auto_wall);
    }

    // --- 2. The k-times level-field cache ---------------------------------
    let data = synthetic::generate(cfg);
    let processor = QueryProcessor::new(&data.db);
    let ktimes_spec =
        Query::ktimes(1).window(window.clone()).strategy(Strategy::QueryBased).build().unwrap();
    let mut cold = EvalStats::new();
    let (cold_wall, cold_answer) =
        time(|| processor.execute_with_stats(&ktimes_spec, &mut cold).unwrap());
    let mut warm = EvalStats::new();
    let (warm_wall, warm_answer) =
        time(|| processor.execute_with_stats(&ktimes_spec, &mut warm).unwrap());
    assert_eq!(warm.backward_steps, 0, "a repeated PSTkQ window must hit the level cache");
    assert_eq!(cold_answer, warm_answer, "cached PSTkQ answers are identical");
    out = out
        .with_metric("ktimes_cold_backward_steps", cold.backward_steps as f64)
        .with_metric("ktimes_cold_wall_secs", cold_wall)
        .with_metric("ktimes_warm_backward_steps", warm.backward_steps as f64)
        .with_metric("ktimes_warm_cache_hits", warm.cache_hits as f64)
        .with_metric("ktimes_warm_wall_secs", warm_wall);

    // --- 3. Async burst submit vs blocking loop ---------------------------
    const BURST: usize = 8;
    let pooled = EngineConfig::default().with_num_threads(4);
    let specs: Vec<QuerySpec> = (0..BURST as u32)
        .map(|i| {
            let shifted = workload::with_start_time(&window, 18 + i).expect("window fits");
            Query::exists().window(shifted).strategy(Strategy::QueryBased).build().unwrap()
        })
        .collect();

    // Blocking loop: one query at a time, each paying its serial sweep.
    let blocking_processor = QueryProcessor::with_config(&data.db, pooled);
    let (blocking_wall, blocking_answers) = time(|| {
        specs.iter().map(|spec| blocking_processor.execute(spec).unwrap()).collect::<Vec<_>>()
    });
    // Async burst: submit everything (the caller is free after this),
    // then await the tickets.
    let burst_processor = QueryProcessor::with_config(&data.db, pooled);
    let (burst_wall, (submit_wall, burst_answers)) = time(|| {
        let (submit_wall, tickets) = time(|| {
            specs
                .iter()
                .map(|spec| burst_processor.submit(spec).expect("unbounded processor admits all"))
                .collect::<Vec<_>>()
        });
        let answers = tickets.into_iter().map(|t| t.wait().unwrap()).collect::<Vec<_>>();
        (submit_wall, answers)
    });
    assert_eq!(blocking_answers, burst_answers, "async answers must equal blocking answers");
    assert!(
        submit_wall < blocking_wall,
        "submitting the burst must be cheaper than evaluating it synchronously"
    );

    out.table = table;
    out.with_metric("burst_queries", BURST as f64)
        .with_metric("blocking_wall_secs", blocking_wall)
        .with_metric("burst_submit_wall_secs", submit_wall)
        .with_metric("burst_wall_secs", burst_wall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pr4_metrics_present_and_consistent() {
        // Tiny instances so the test stays fast; the metric names are the
        // contract BENCH_pr4.json consumers rely on.
        let cfg = SyntheticConfig::small();
        let out = planner_experiment(&cfg);
        let get = |name: &str| {
            out.metrics
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing metric {name}"))
                .1
        };
        // The full-size database must plan query-based, and Auto must have
        // matched its chosen strategy at every size.
        assert_eq!(get(&format!("d{}_auto_chose_qb", cfg.num_objects)), 1.0);
        for objects in [1usize, 32, cfg.num_objects] {
            assert_eq!(get(&format!("d{objects}_auto_matches")), 1.0);
        }
        // The warm PSTkQ run must be a pure hit.
        assert_eq!(get("ktimes_warm_backward_steps"), 0.0);
        assert!(get("ktimes_warm_cache_hits") >= 1.0);
        assert!(get("ktimes_cold_backward_steps") > 0.0);
        assert_eq!(get("burst_queries"), 8.0);
        assert!(get("blocking_wall_secs") > 0.0);
        assert!(get("burst_wall_secs") > 0.0);
        assert!(
            get("burst_submit_wall_secs") < get("blocking_wall_secs"),
            "submission must return before a blocking loop would"
        );
        assert!(!out.table.is_empty());
    }
}
