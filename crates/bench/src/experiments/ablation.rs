//! Ablations of the reproduction's own design choices.
//!
//! These go beyond the paper's figures: they quantify the impact of the
//! implementation decisions this reproduction makes on top of the paper's
//! algorithms (virtual operators, hybrid vectors, ε-pruning, bound-based
//! early termination).

use ust_core::engine::{object_based, EngineConfig};
use ust_core::{threshold, EvalStats};
use ust_data::csv::fmt_secs;
use ust_data::workload;
use ust_data::{synthetic, ResultTable, SyntheticConfig};
use ust_markov::{augmented, DenseVector};

use crate::{time, ExperimentOutput, Scale};

/// All ablation experiments.
pub fn all(scale: Scale) -> Vec<ExperimentOutput> {
    vec![
        ablation_augmented(scale),
        ablation_hybrid(scale),
        ablation_epsilon(scale),
        ablation_threshold(scale),
    ]
}

/// Virtual `M−`/`M+` operators vs materialized augmented matrices.
pub fn ablation_augmented(scale: Scale) -> ExperimentOutput {
    let (num_objects, states_list): (usize, Vec<usize>) = match scale {
        Scale::Ci => (100, vec![1_000, 4_000]),
        Scale::Paper => (1_000, vec![1_000, 4_000, 16_000, 64_000]),
    };
    let config = EngineConfig::default();
    let mut table = ResultTable::new([
        "|S|",
        "virtual operator (s)",
        "materialized M±: build (s)",
        "materialized M±: total (s)",
    ]);
    for states in states_list {
        let data = synthetic::generate(&SyntheticConfig {
            num_objects,
            num_states: states,
            ..SyntheticConfig::default()
        });
        let window = workload::paper_default_window(states).expect("window fits");
        let (virt_t, virt) = time(|| {
            object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
        });

        // Materialized variant: build M−/M+ once, then propagate dense
        // (|S|+1)-vectors through them for every object.
        let chain = &data.db.models()[0];
        let (build_t, (minus, plus)) = time(|| {
            (
                augmented::exists_minus(chain.matrix()),
                augmented::exists_plus(chain.matrix(), window.states()),
            )
        });
        let top = augmented::top_index(states);
        let (run_t, results) = time(|| {
            let mut out = Vec::with_capacity(data.db.len());
            for object in data.db.objects() {
                let mut v = DenseVector::zeros(states + 1);
                for (s, p) in object.anchor().distribution().iter() {
                    v.set(s, p).unwrap();
                }
                for t in 0..window.t_end() {
                    let m = if window.time_in_window(t + 1) { &plus } else { &minus };
                    v = m.vecmat_dense(&v).unwrap();
                }
                out.push(v.get(top));
            }
            out
        });
        // Sanity: both must agree.
        for (a, b) in virt.iter().zip(&results) {
            assert!((a.probability - b).abs() < 1e-9, "virtual vs materialized mismatch");
        }
        table.push_row([
            states.to_string(),
            fmt_secs(virt_t),
            fmt_secs(build_t),
            fmt_secs(build_t + run_t),
        ]);
    }
    ExperimentOutput {
        metrics: Vec::new(),
        id: "ablation_augmented".into(),
        title: "Ablation — virtual M−/M+ operators vs materialized matrices".into(),
        table,
        expectation: "The virtual operator wins increasingly with |S|: materialization pays \
                      an O(nnz(M)) copy per query plus dense |S|+1 vectors per object, while \
                      the virtual path stays sparse."
            .into(),
    }
}

/// Hybrid sparse→dense switching vs always-sparse vs always-dense vectors.
pub fn ablation_hybrid(scale: Scale) -> ExperimentOutput {
    let cfg = match scale {
        Scale::Ci => {
            SyntheticConfig { num_objects: 500, num_states: 10_000, ..SyntheticConfig::default() }
        }
        Scale::Paper => SyntheticConfig::default(),
    };
    let data = synthetic::generate(&cfg);
    let window = workload::paper_default_window(cfg.num_states).expect("window fits");
    let mut table = ResultTable::new(["densify threshold", "OB (s)"]);
    for (label, threshold) in [
        ("0.0 (always dense)", 0.0),
        ("0.05", 0.05),
        ("0.25 (default)", 0.25),
        ("1.0 (always sparse)", 1.0),
    ] {
        let config = EngineConfig::default().with_densify_threshold(threshold);
        let (t, _) = time(|| {
            object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
        });
        table.push_row([label.to_string(), fmt_secs(t)]);
    }
    ExperimentOutput {
        metrics: Vec::new(),
        id: "ablation_hybrid".into(),
        title: "Ablation — hybrid propagation-vector representation".into(),
        table,
        expectation: "Always-dense pays O(|S|) per transition regardless of support; \
                      always-sparse pays sorting overhead once vectors densify. The hybrid \
                      default sits at or near the minimum."
            .into(),
    }
}

/// ε-pruning: speed vs bounded error.
pub fn ablation_epsilon(scale: Scale) -> ExperimentOutput {
    let cfg = match scale {
        Scale::Ci => {
            SyntheticConfig { num_objects: 500, num_states: 10_000, ..SyntheticConfig::default() }
        }
        Scale::Paper => SyntheticConfig::default(),
    };
    let data = synthetic::generate(&cfg);
    let window = workload::paper_default_window(cfg.num_states).expect("window fits");
    let exact =
        object_based::evaluate(&data.db, &window, &EngineConfig::default(), &mut EvalStats::new())
            .unwrap();
    let mut table = ResultTable::new(["ε", "OB (s)", "max |error|", "dropped mass (total)"]);
    for eps in [0.0, 1e-9, 1e-6, 1e-4] {
        let config = EngineConfig::default().with_epsilon(eps);
        let mut stats = EvalStats::new();
        let (t, results) =
            time(|| object_based::evaluate(&data.db, &window, &config, &mut stats).unwrap());
        let max_err = results
            .iter()
            .zip(&exact)
            .map(|(a, b)| (a.probability - b.probability).abs())
            .fold(0.0f64, f64::max);
        table.push_row([
            format!("{eps:.0e}"),
            fmt_secs(t),
            format!("{max_err:.2e}"),
            format!("{:.2e}", stats.pruned_mass),
        ]);
    }
    ExperimentOutput {
        metrics: Vec::new(),
        id: "ablation_epsilon".into(),
        title: "Ablation — ε-pruning of propagation vectors".into(),
        table,
        expectation: "Pruning trades bounded error (≤ dropped mass per object) for speed; \
                      ε = 1e-9 should be free, ε = 1e-4 visibly faster with error ≤ ~1e-3."
            .into(),
    }
}

/// Early termination of thresholded queries via ⊤ bounds.
pub fn ablation_threshold(scale: Scale) -> ExperimentOutput {
    let cfg = match scale {
        Scale::Ci => {
            SyntheticConfig { num_objects: 500, num_states: 10_000, ..SyntheticConfig::default() }
        }
        Scale::Paper => SyntheticConfig::default(),
    };
    let data = synthetic::generate(&cfg);
    let window = workload::paper_default_window(cfg.num_states).expect("window fits");
    let config = EngineConfig::default();
    let (exact_t, _) =
        time(|| object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap());
    let mut table = ResultTable::new([
        "τ",
        "threshold query (s)",
        "exact OB (s)",
        "early terminations",
        "accepted",
    ]);
    for tau in [0.1, 0.5, 0.9] {
        let mut stats = EvalStats::new();
        let (t, accepted) = time(|| {
            threshold::threshold_query(&data.db, &window, tau, &config, &mut stats).unwrap()
        });
        table.push_row([
            format!("{tau}"),
            fmt_secs(t),
            fmt_secs(exact_t),
            stats.early_terminations.to_string(),
            accepted.len().to_string(),
        ]);
    }
    ExperimentOutput {
        metrics: Vec::new(),
        id: "ablation_threshold".into(),
        title: "Ablation — bound-based early termination for threshold queries".into(),
        table,
        expectation: "Most objects never reach the window (upper bound crosses τ early) or \
                      are decided as soon as enough ⊤ mass accumulates, so the thresholded \
                      run undercuts the exact OB time."
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn augmented_ablation_runs_and_validates_at_micro_scale() {
        // The function itself cross-asserts virtual vs materialized.
        let out = ablation_augmented(Scale::Ci);
        assert_eq!(out.table.len(), 2);
    }

    #[test]
    fn hybrid_ablation_has_four_rows() {
        let out = ablation_hybrid(Scale::Ci);
        assert_eq!(out.table.len(), 4);
    }
}
