//! PR 6 kernel experiments: the cache-blocked batched propagation kernels
//! (dense panels, sparse k-way merge) against the per-object baseline,
//! measured in wall time *and* matrix-entry throughput. `entries_touched`
//! is invariant across kernel choices — every mode performs the same
//! floating-point work — so entries/second isolates how fast each kernel
//! streams the matrix, independent of what the workload asked for.

use ust_core::engine::{object_based, EngineConfig, KernelMode};
use ust_core::EvalStats;
use ust_data::csv::fmt_secs;
use ust_data::workload;
use ust_data::{synthetic, ResultTable, SyntheticConfig};

use crate::{time, ExperimentOutput, Scale};

/// The fig11 locality workload (banded transitions) — the dataset on which
/// PR 2's row-sharing batches cut row traffic to 0.185× but *lost* wall
/// time to merge bookkeeping; the kernels exist to win it back.
fn locality_config(scale: Scale) -> SyntheticConfig {
    super::fig11::base_config(scale)
}

/// Batched OB-∃ under the PR 6 kernels vs the per-object baseline: same
/// bits out, higher matrix-entry throughput as the batch grows.
pub fn pr6_kernels(scale: Scale) -> ExperimentOutput {
    kernels_experiment(&locality_config(scale))
}

fn kernels_experiment(cfg: &SyntheticConfig) -> ExperimentOutput {
    let data = synthetic::generate(cfg);
    let window = workload::paper_default_window(cfg.num_states).expect("window fits");

    let mut table = ResultTable::new([
        "batch / mode",
        "wall (s)",
        "entries touched",
        "entries / s",
        "rows traversed",
    ]);

    let run = |batch_size: usize, mode: KernelMode| {
        let mut stats = EvalStats::new();
        let config = EngineConfig::default().with_batch_size(batch_size).with_batching(mode);
        let (t, probs) =
            time(|| object_based::evaluate(&data.db, &window, &config, &mut stats).unwrap());
        (t, stats, probs)
    };

    let (base_t, per_object, baseline) = run(1, KernelMode::PerObject);
    let throughput = |stats: &EvalStats, t: f64| stats.entries_touched as f64 / t.max(1e-12);
    table.push_row([
        "1 (per-object)".to_string(),
        fmt_secs(base_t),
        per_object.entries_touched.to_string(),
        format!("{:.3e}", throughput(&per_object, base_t)),
        per_object.rows_traversed.to_string(),
    ]);

    let mut out = ExperimentOutput {
        metrics: Vec::new(),
        id: "pr6_kernels".into(),
        title: "PR 6 — blocked propagation kernels vs per-object baseline (fig11 locality \
                workload)"
            .into(),
        table: ResultTable::new([""]),
        expectation: "Identical probabilities in every configuration; entries touched is \
                      invariant across batch sizes and kernel modes (same floating-point \
                      work), so entries/second is a clean throughput measure. Under the \
                      adaptive (Auto) mode throughput rises with the batch size — the \
                      shared-union merge and the dense panels amortize matrix traffic that \
                      PR 2's flatten-and-sort merge burned as bookkeeping — and batch 128 \
                      beats the per-object wall time it previously lost to."
            .into(),
    }
    .with_stats_metrics("per_object", &per_object)
    .with_metric("per_object_wall_secs", base_t)
    .with_metric("per_object_entries_per_sec", throughput(&per_object, base_t));

    for batch_size in [8usize, 32, 128] {
        let (t, stats, batched) = run(batch_size, KernelMode::Auto);
        assert!(
            baseline
                .iter()
                .zip(&batched)
                .all(|(a, b)| a.probability.to_bits() == b.probability.to_bits()),
            "batched kernels must be bit-identical to the per-object baseline"
        );
        assert_eq!(
            stats.entries_touched, per_object.entries_touched,
            "entries touched is invariant across kernel configurations"
        );
        table.push_row([
            format!("{batch_size} (auto)"),
            fmt_secs(t),
            stats.entries_touched.to_string(),
            format!("{:.3e}", throughput(&stats, t)),
            stats.rows_traversed.to_string(),
        ]);
        out = out
            .with_stats_metrics(&format!("batch{batch_size}"), &stats)
            .with_metric(format!("batch{batch_size}_wall_secs"), t)
            .with_metric(format!("batch{batch_size}_entries_per_sec"), throughput(&stats, t));
    }

    // Pin the heuristic's two explicit endpoints at the largest batch, so
    // the JSON shows what Auto is choosing between.
    for (label, mode) in
        [("shared-union", KernelMode::SharedUnion), ("per-object kernels", KernelMode::PerObject)]
    {
        let (t, stats, batched) = run(128, mode);
        assert!(
            baseline
                .iter()
                .zip(&batched)
                .all(|(a, b)| a.probability.to_bits() == b.probability.to_bits()),
            "explicit kernel modes must be bit-identical to the baseline"
        );
        table.push_row([
            format!("128 ({label})"),
            fmt_secs(t),
            stats.entries_touched.to_string(),
            format!("{:.3e}", throughput(&stats, t)),
            stats.rows_traversed.to_string(),
        ]);
        let prefix =
            if mode == KernelMode::SharedUnion { "mode_shared128" } else { "mode_perobject128" };
        out = out
            .with_metric(format!("{prefix}_wall_secs"), t)
            .with_metric(format!("{prefix}_entries_per_sec"), throughput(&stats, t));
    }

    out.table = table;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pr6_metrics_present_and_consistent() {
        // Tiny instances so the test stays fast; the metric names are the
        // contract BENCH_pr6.json (and the CI assertion step) rely on.
        let cfg = SyntheticConfig::small();
        let out = kernels_experiment(&cfg);
        let get = |name: &str| {
            out.metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        assert!(get("per_object_entries_per_sec") > 0.0);
        for prefix in ["batch8", "batch32", "batch128"] {
            assert_eq!(
                get(&format!("{prefix}_entries_touched")),
                get("per_object_entries_touched")
            );
            assert!(get(&format!("{prefix}_entries_per_sec")) > 0.0);
        }
        assert!(get("mode_shared128_entries_per_sec") > 0.0);
        assert!(get("mode_perobject128_entries_per_sec") > 0.0);
        // Row sharing still shows up in the deterministic counter.
        assert!(get("per_object_rows_traversed") >= get("batch128_rows_traversed"));
    }
}
