//! PR 8 streaming experiment: standing queries maintained through the
//! ingest path vs from-scratch re-execution per arrival.
//!
//! A query-based subscription pays one dense backward sweep at
//! registration; every subsequent localized update (a hot-set fix) is then
//! a suffix-scoped refresh — one maintained entry invalidated, zero
//! backward steps, because ingest never touches the observation-independent
//! field caches. The batch alternative pays a full cold sweep per arrival.
//! The experiment replays the same deterministic feed through both paths,
//! asserts the answers bit-identical at every applied prefix, and reports
//! the backward-step ratio (the acceptance bar is ≥ 10×).

use ust_core::{EngineConfig, EvalStats, Query, QueryProcessor, QuerySpec, Strategy};
use ust_data::csv::fmt_secs;
use ust_data::streaming_feed::{generate_streaming_feed, FeedConfig, StreamingFeed};
use ust_data::{IndexWorkloadConfig, ResultTable};
use ust_space::TimeSet;

use crate::{time, ExperimentOutput, Scale};

fn feed_config(scale: Scale) -> FeedConfig {
    match scale {
        // 200 objects, 40 arrivals on a hot set of 8: the CI floor.
        Scale::Ci => FeedConfig {
            workload: IndexWorkloadConfig::small(),
            num_events: 40,
            hot_objects: 8,
            stale_fraction: 0.15,
            max_time_step: 2,
            seed: 0xF8,
        },
        // 2 000 objects over 20 000 states, 200 arrivals on 20 reporters.
        Scale::Paper => FeedConfig {
            workload: IndexWorkloadConfig {
                num_objects: 2_000,
                num_states: 20_000,
                ..IndexWorkloadConfig::default()
            },
            num_events: 200,
            hot_objects: 20,
            stale_fraction: 0.15,
            max_time_step: 2,
            seed: 0xF8,
        },
    }
}

/// The standing query both paths answer: PST∃Q over a mid-space band with
/// a horizon safely past every feed timestamp, pinned query-based so the
/// warm-sweep economics are what is being measured.
fn standing_spec(feed: &StreamingFeed) -> QuerySpec {
    let n = feed.config.workload.num_states;
    let lo = n / 4;
    let hi = (lo + n / 50 + 8).min(n);
    Query::exists()
        .window(
            ust_core::QueryWindow::from_states(n, lo..hi, TimeSet::interval(16, 22))
                .expect("band and horizon fit the space"),
        )
        .strategy(Strategy::QueryBased)
        .build()
        .expect("spec is valid")
}

/// Bit-exact rendering of a probabilities answer.
fn bits(answer: &ust_core::QueryAnswer) -> Vec<(u64, u64)> {
    answer
        .probabilities()
        .expect("probabilities answer")
        .iter()
        .map(|p| (p.object_id, p.probability.to_bits()))
        .collect()
}

/// Standing queries over a streaming feed: per-arrival suffix refreshes at
/// zero backward steps vs a full cold sweep per arrival, bit-identical
/// answers at every applied prefix.
pub fn pr8_streaming(scale: Scale) -> ExperimentOutput {
    streaming_experiment(&feed_config(scale))
}

fn streaming_experiment(cfg: &FeedConfig) -> ExperimentOutput {
    let feed = generate_streaming_feed(cfg);
    let spec = standing_spec(&feed);

    // Streaming side: one subscription, the whole feed through ingest.
    let processor = QueryProcessor::with_config(&feed.db, EngineConfig::default());
    let (watch_secs, sub) = time(|| processor.watch(&spec).expect("watch succeeds"));
    let sub = sub;
    let (ingest_secs, _) = time(|| {
        for event in &feed.events {
            processor.ingest(event.object_id, event.observation.clone()).expect("valid event");
        }
    });
    let applied = sub.notifications();
    let stream = processor
        .metrics()
        .stream(sub.id())
        .expect("the subscription registered its counters")
        .clone();

    // Batch side: a cold processor re-executes the same spec on every
    // applied prefix (the answers a dashboard would otherwise recompute).
    let mut fresh_backward_steps = 0u64;
    let mut fresh_secs = 0.0;
    let mut db = feed.db.clone();
    let mut checked = 0u64;
    let mut final_bits = None;
    for event in &feed.events {
        if db.ingest(event.object_id, event.observation.clone()).expect("valid event")
            != ust_core::IngestOutcome::Applied
        {
            continue;
        }
        let cold = QueryProcessor::with_config(&db, EngineConfig::default());
        let mut stats = EvalStats::new();
        let (t, answer) =
            time(|| cold.execute_with_stats(&spec, &mut stats).expect("query succeeds"));
        fresh_secs += t;
        fresh_backward_steps += stats.backward_steps;
        final_bits = Some(bits(&answer));
        checked += 1;
    }
    assert!(checked >= applied, "every notification has a batch counterpart");
    // Final-prefix bit identity; the per-prefix equivalence is pinned
    // exhaustively by tests/streaming.rs.
    let identical = final_bits == Some(bits(&sub.answer().expect("subscription answers")));
    assert!(identical, "streaming and batch answers must be bit-identical at the final prefix");

    let streaming_steps = stream.recompute_steps + stream.incremental_steps;
    let ratio = fresh_backward_steps as f64 / streaming_steps.max(1) as f64;

    let mut table = ResultTable::new(["path", "backward steps", "wall (s)", "per-arrival steps"]);
    table.push_row([
        "streaming (watch + refreshes)".into(),
        streaming_steps.to_string(),
        fmt_secs(watch_secs + ingest_secs),
        (stream.incremental_steps / applied.max(1)).to_string(),
    ]);
    table.push_row([
        "batch (cold sweep per arrival)".into(),
        fresh_backward_steps.to_string(),
        fmt_secs(fresh_secs),
        (fresh_backward_steps / applied.max(1)).to_string(),
    ]);

    ExperimentOutput {
        metrics: Vec::new(),
        id: "pr8_streaming".into(),
        title: format!(
            "PR 8 — standing queries over a {}-event feed on {} objects",
            cfg.num_events, cfg.workload.num_objects
        ),
        table,
        expectation: "The subscription pays its dense backward sweep once at registration; \
                      every applied arrival then refreshes at zero backward steps (the field \
                      caches are observation-independent, so only the one maintained entry is \
                      invalidated). Re-executing from scratch pays a cold sweep per arrival, \
                      so total backward steps land at least 10× higher than the streaming \
                      path, with bit-identical answers."
            .into(),
    }
    .with_metric("num_events", cfg.num_events as f64)
    .with_metric("applied_events", applied as f64)
    .with_metric("stream_recompute_steps", stream.recompute_steps as f64)
    .with_metric("stream_incremental_steps", stream.incremental_steps as f64)
    .with_metric("stream_suffix_invalidations", stream.suffix_invalidations as f64)
    .with_metric("fresh_backward_steps", fresh_backward_steps as f64)
    .with_metric("backward_step_ratio", ratio)
    .with_metric("bit_identical", if identical { 1.0 } else { 0.0 })
    .with_metric("streaming_wall_secs", watch_secs + ingest_secs)
    .with_metric("fresh_wall_secs", fresh_secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CI assertion the acceptance criteria name: the committed
    /// `BENCH_pr8.json` must show localized updates at least 10× cheaper
    /// in backward steps than from-scratch recomputation, bit-identically.
    #[test]
    fn pr8_streaming_saves_at_least_10x_backward_steps() {
        let out = streaming_experiment(&feed_config(Scale::Ci));
        let get = |name: &str| {
            out.metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        assert_eq!(get("bit_identical"), 1.0);
        assert_eq!(get("stream_incremental_steps"), 0.0, "warm refreshes are free");
        assert!(get("applied_events") >= 10.0, "the feed applies enough arrivals");
        assert_eq!(
            get("stream_suffix_invalidations"),
            get("applied_events"),
            "one maintained entry invalidated per applied arrival"
        );
        assert!(
            get("backward_step_ratio") >= 10.0,
            "streaming must be ≥10× cheaper in backward steps (got {}×)",
            get("backward_step_ratio")
        );
    }
}
