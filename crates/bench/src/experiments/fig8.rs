//! Figure 8 — query processing runtime w.r.t. the number of states.
//!
//! 8(a): small setting including the Monte-Carlo competitor. The paper's
//! point: MC is orders of magnitude slower than both exact approaches even
//! at 100 samples (which carries ≥ 5% standard deviation), and QB beats OB.
//! 8(b): large setting (MC excluded, as in the paper).

use ust_core::engine::monte_carlo::MonteCarlo;
use ust_core::engine::{object_based, query_based, EngineConfig};
use ust_core::EvalStats;
use ust_data::csv::fmt_secs;
use ust_data::workload::paper_default_window;
use ust_data::{synthetic, ResultTable, SyntheticConfig};

use crate::{time, ExperimentOutput, Scale};

/// Figure 8(a): PST∃Q runtime vs `|S|`, small database, MC vs OB vs QB.
pub fn fig8a(scale: Scale) -> ExperimentOutput {
    let (num_objects, states_list): (usize, Vec<usize>) = match scale {
        Scale::Ci => (200, vec![2_000, 6_000, 10_000, 14_000, 18_000]),
        Scale::Paper => (1_000, vec![2_000, 6_000, 10_000, 14_000, 18_000]),
    };
    // The paper runs MC at 100 samples (σ ≥ 5%). Native-code sampling is
    // far cheaper than the paper's MATLAB loop, so we additionally report
    // an accuracy-matched MC at 10,000 samples (σ ≈ 0.5%) — the cost of
    // getting *usable* answers out of sampling.
    let mc = MonteCarlo::new(100, 0xF18A);
    let mc_acc = MonteCarlo::new(10_000, 0xF18B);
    let config = EngineConfig::default();
    let mut table =
        ResultTable::new(["|S|", "MC@100 (s)", "MC@10k (s)", "OB (s)", "QB (s)", "max |OB-QB|"]);
    for states in states_list {
        let data = synthetic::generate(&SyntheticConfig {
            num_objects,
            num_states: states,
            ..SyntheticConfig::default()
        });
        let window = paper_default_window(states).expect("window fits the space");
        let (mc_t, _) =
            time(|| mc.evaluate_exists(&data.db, &window, &mut EvalStats::new()).unwrap());
        let (mc_acc_t, _) =
            time(|| mc_acc.evaluate_exists(&data.db, &window, &mut EvalStats::new()).unwrap());
        let (ob_t, ob) = time(|| {
            object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
        });
        let (qb_t, qb) = time(|| {
            query_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
        });
        let max_diff = ob
            .iter()
            .zip(&qb)
            .map(|(a, b)| (a.probability - b.probability).abs())
            .fold(0.0f64, f64::max);
        table.push_row([
            states.to_string(),
            fmt_secs(mc_t),
            fmt_secs(mc_acc_t),
            fmt_secs(ob_t),
            fmt_secs(qb_t),
            format!("{max_diff:.2e}"),
        ]);
    }
    ExperimentOutput {
        metrics: Vec::new(),
        id: "fig8a".into(),
        title: "Fig. 8(a) — runtime vs |S| (small state space, with MC)".into(),
        table,
        expectation: "Accuracy-matched MC ≫ OB > QB at every |S|; OB and QB agree to \
                      numerical precision. (At the paper's 100 samples native MC is cheap \
                      but carries ≥5% standard error — the paper's MATLAB MC was slow even \
                      at that accuracy; it is dropped from later experiments either way.)"
            .into(),
    }
}

/// Figure 8(b): PST∃Q runtime vs `|S|`, large database, OB vs QB.
pub fn fig8b(scale: Scale) -> ExperimentOutput {
    let (num_objects, states_list): (usize, Vec<usize>) = match scale {
        Scale::Ci => (5_000, vec![10_000, 30_000, 50_000, 70_000, 90_000]),
        Scale::Paper => (100_000, vec![10_000, 30_000, 50_000, 70_000, 90_000]),
    };
    let config = EngineConfig::default();
    let mut table = ResultTable::new(["|S|", "OB (s)", "QB (s)", "OB/QB"]);
    for states in states_list {
        let data = synthetic::generate(&SyntheticConfig {
            num_objects,
            num_states: states,
            ..SyntheticConfig::default()
        });
        let window = paper_default_window(states).expect("window fits the space");
        let (ob_t, _) = time(|| {
            object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
        });
        let (qb_t, _) = time(|| {
            query_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
        });
        table.push_row([
            states.to_string(),
            fmt_secs(ob_t),
            fmt_secs(qb_t),
            format!("{:.0}×", ob_t / qb_t.max(1e-9)),
        ]);
    }
    ExperimentOutput {
        metrics: Vec::new(),
        id: "fig8b".into(),
        title: "Fig. 8(b) — runtime vs |S| (large database, OB vs QB)".into(),
        table,
        expectation: "QB remains orders of magnitude faster than OB as |S| grows; \
                      its cost is dominated by the one backward pass, amortized over all objects."
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8a_tiny_run_produces_all_rows() {
        // Directly exercise the row logic at a micro scale by calling the
        // public function at Ci scale but trusting only structure here
        // would be slow; instead replicate one row cheaply.
        let data = synthetic::generate(&SyntheticConfig {
            num_objects: 20,
            num_states: 2_000,
            ..SyntheticConfig::default()
        });
        let window = paper_default_window(2_000).unwrap();
        let config = EngineConfig::default();
        let ob = object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap();
        let qb = query_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap();
        let mc = MonteCarlo::new(50, 1)
            .evaluate_exists(&data.db, &window, &mut EvalStats::new())
            .unwrap();
        assert_eq!(ob.len(), 20);
        assert_eq!(qb.len(), 20);
        assert_eq!(mc.len(), 20);
        for ((a, b), m) in ob.iter().zip(&qb).zip(&mc) {
            assert!((a.probability - b.probability).abs() < 1e-9);
            // MC within 4σ of the exact value at n = 50.
            let sigma = MonteCarlo::standard_error(a.probability.clamp(0.01, 0.99), 50);
            assert!(
                (m.probability - a.probability).abs() <= 4.0 * sigma + 1e-9,
                "MC {} vs exact {}",
                m.probability,
                a.probability
            );
        }
    }
}
