//! Criterion bench for Figure 11: sensitivity of both engines to the
//! locality parameters `max_step` and `state_spread`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ust_core::engine::{object_based, query_based, EngineConfig};
use ust_core::EvalStats;
use ust_data::workload;
use ust_data::{synthetic, SyntheticConfig};

fn base() -> SyntheticConfig {
    SyntheticConfig { num_objects: 100, num_states: 10_000, ..SyntheticConfig::default() }
}

fn bench_max_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11a_max_step");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for max_step in [10usize, 40, 100] {
        let data = synthetic::generate(&SyntheticConfig { max_step, ..base() });
        let window = workload::paper_default_window(10_000).unwrap();
        let config = EngineConfig::default();
        group.bench_with_input(BenchmarkId::new("OB", max_step), &max_step, |b, _| {
            b.iter(|| {
                object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("QB", max_step), &max_step, |b, _| {
            b.iter(|| {
                query_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_state_spread(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11b_state_spread");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for state_spread in [2usize, 10, 20] {
        let data = synthetic::generate(&SyntheticConfig { state_spread, ..base() });
        let window = workload::paper_default_window(10_000).unwrap();
        let config = EngineConfig::default();
        group.bench_with_input(BenchmarkId::new("OB", state_spread), &state_spread, |b, _| {
            b.iter(|| {
                object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("QB", state_spread), &state_spread, |b, _| {
            b.iter(|| {
                query_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_max_step, bench_state_spread);
criterion_main!(benches);
