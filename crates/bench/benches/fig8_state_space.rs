//! Criterion bench for Figure 8: PST∃Q runtime vs `|S|` for the
//! Monte-Carlo competitor and the two exact engines.
//!
//! Scaled down from the paper's parameters so `cargo bench` stays fast; the
//! `paper_experiments` binary reproduces the full sweeps.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ust_core::engine::monte_carlo::MonteCarlo;
use ust_core::engine::{object_based, query_based, EngineConfig};
use ust_core::EvalStats;
use ust_data::workload::paper_default_window;
use ust_data::{synthetic, SyntheticConfig};

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_exists_vs_states");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    for states in [2_000usize, 10_000] {
        let data = synthetic::generate(&SyntheticConfig {
            num_objects: 100,
            num_states: states,
            ..SyntheticConfig::default()
        });
        let window = paper_default_window(states).unwrap();
        let config = EngineConfig::default();
        let mc = MonteCarlo::new(100, 1);

        group.bench_with_input(BenchmarkId::new("MC@100", states), &states, |b, _| {
            b.iter(|| mc.evaluate_exists(&data.db, &window, &mut EvalStats::new()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("OB", states), &states, |b, _| {
            b.iter(|| {
                object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("QB", states), &states, |b, _| {
            b.iter(|| {
                query_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
