//! Criterion bench for Figure 10: the three query predicates under both
//! evaluation strategies as the query window grows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ust_core::engine::{forall, ktimes, object_based, query_based, EngineConfig};
use ust_core::EvalStats;
use ust_data::workload;
use ust_data::{synthetic, SyntheticConfig};

fn bench_predicates(c: &mut Criterion) {
    let data = synthetic::generate(&SyntheticConfig {
        num_objects: 100,
        num_states: 10_000,
        ..SyntheticConfig::default()
    });
    let base = workload::paper_default_window(10_000).unwrap();
    let config = EngineConfig::default();

    let mut ob = c.benchmark_group("fig10a_predicates_object_based");
    ob.sample_size(10).measurement_time(Duration::from_secs(3));
    for len in [2u32, 6, 10] {
        let window = workload::with_duration(&base, len).unwrap();
        ob.bench_with_input(BenchmarkId::new("exists", len), &len, |b, _| {
            b.iter(|| {
                object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
            })
        });
        ob.bench_with_input(BenchmarkId::new("forall", len), &len, |b, _| {
            b.iter(|| {
                forall::evaluate_object_based(&data.db, &window, &config, &mut EvalStats::new())
                    .unwrap()
            })
        });
        ob.bench_with_input(BenchmarkId::new("ktimes", len), &len, |b, _| {
            b.iter(|| {
                ktimes::evaluate_object_based(&data.db, &window, &config, &mut EvalStats::new())
                    .unwrap()
            })
        });
    }
    ob.finish();

    let mut qb = c.benchmark_group("fig10b_predicates_query_based");
    qb.sample_size(10).measurement_time(Duration::from_secs(3));
    for len in [2u32, 6, 10] {
        let window = workload::with_duration(&base, len).unwrap();
        qb.bench_with_input(BenchmarkId::new("exists", len), &len, |b, _| {
            b.iter(|| {
                query_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
            })
        });
        qb.bench_with_input(BenchmarkId::new("forall", len), &len, |b, _| {
            b.iter(|| {
                forall::evaluate_query_based(&data.db, &window, &config, &mut EvalStats::new())
                    .unwrap()
            })
        });
        qb.bench_with_input(BenchmarkId::new("ktimes", len), &len, |b, _| {
            b.iter(|| {
                ktimes::evaluate_query_based(&data.db, &window, &config, &mut EvalStats::new())
                    .unwrap()
            })
        });
    }
    qb.finish();
}

criterion_group!(benches, bench_predicates);
criterion_main!(benches);
