//! Criterion bench for Figure 9(a)–(c): PST∃Q runtime vs query start time
//! on synthetic data and a road network, plus the temporal-independence
//! model evaluation used by Fig. 9(d).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ust_core::engine::{independent, object_based, query_based, EngineConfig};
use ust_core::{EvalStats, QueryWindow};
use ust_data::network_data::{self, NetworkObjectConfig};
use ust_data::workload;
use ust_data::{synthetic, SyntheticConfig};
use ust_space::{NetworkConfig, TimeSet};

fn bench_synthetic_start_time(c: &mut Criterion) {
    let data = synthetic::generate(&SyntheticConfig {
        num_objects: 200,
        num_states: 10_000,
        ..SyntheticConfig::default()
    });
    let base = workload::paper_default_window(10_000).unwrap();
    let config = EngineConfig::default();

    let mut group = c.benchmark_group("fig9a_start_time_synthetic");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for start in [5u32, 25, 50] {
        let window = workload::with_start_time(&base, start).unwrap();
        group.bench_with_input(BenchmarkId::new("OB", start), &start, |b, _| {
            b.iter(|| {
                object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("QB", start), &start, |b, _| {
            b.iter(|| {
                query_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_network_start_time(c: &mut Criterion) {
    let dataset = network_data::generate(
        &NetworkConfig { num_nodes: 5_000, num_edges: 6_400, extent: 200.0, seed: 0xB9 },
        &NetworkObjectConfig { num_objects: 200, object_spread: 5, seed: 0xB9 },
    );
    let n = dataset.network.num_nodes();
    let config = EngineConfig::default();

    let mut group = c.benchmark_group("fig9bc_start_time_road_network");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for start in [5u32, 25, 50] {
        let window =
            QueryWindow::from_states(n, 100usize..=120, TimeSet::interval(start, start + 5))
                .unwrap();
        group.bench_with_input(BenchmarkId::new("OB", start), &start, |b, _| {
            b.iter(|| {
                object_based::evaluate(&dataset.db, &window, &config, &mut EvalStats::new())
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("QB", start), &start, |b, _| {
            b.iter(|| {
                query_based::evaluate(&dataset.db, &window, &config, &mut EvalStats::new()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_independence_model(c: &mut Criterion) {
    // Fig. 9(d) compares accuracy; this measures the evaluation cost of the
    // two models on the same window (both are forward passes).
    let data = synthetic::generate(&SyntheticConfig {
        num_objects: 200,
        num_states: 10_000,
        ..SyntheticConfig::default()
    });
    let window = workload::paper_default_window(10_000).unwrap();
    let config = EngineConfig::default();

    let mut group = c.benchmark_group("fig9d_model_comparison");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("with_temporal_correlation(OB)", |b| {
        b.iter(|| {
            object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
        })
    });
    group.bench_function("without_temporal_correlation", |b| {
        b.iter(|| {
            independent::evaluate_exists_independent(
                &data.db,
                &window,
                &config,
                &mut EvalStats::new(),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_synthetic_start_time,
    bench_network_start_time,
    bench_independence_model
);
criterion_main!(benches);
