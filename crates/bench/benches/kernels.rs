//! Micro-benchmarks of the sparse kernels every query reduces to:
//! sparse/dense vector–matrix products, the backward matvec, transposition
//! and mask extraction.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ust_markov::testutil;
use ust_markov::{DenseVector, SparseVector, SpmvScratch, StateMask};

fn bench_vecmat(c: &mut Criterion) {
    let mut rng = testutil::rng(42);
    let n = 50_000;
    let matrix = testutil::random_banded_stochastic(&mut rng, n, 5, 40);

    let mut group = c.benchmark_group("kernel_vecmat");
    group.sample_size(20).measurement_time(Duration::from_secs(3));

    // Sparse input at several support sizes.
    for nnz in [5usize, 500, 5_000] {
        let v = testutil::random_distribution(&mut rng, n, nnz);
        let mut scratch = SpmvScratch::new();
        group.bench_with_input(BenchmarkId::new("sparse", nnz), &nnz, |b, _| {
            b.iter(|| matrix.vecmat_sparse_with(&v, &mut scratch).unwrap())
        });
    }

    // Dense input.
    let dense = DenseVector::uniform(n).unwrap();
    group.bench_function("dense_forward", |b| b.iter(|| matrix.vecmat_dense(&dense).unwrap()));
    group.bench_function("dense_backward_matvec", |b| {
        b.iter(|| matrix.matvec_dense(&dense).unwrap())
    });
    group.finish();
}

fn bench_transpose_and_masks(c: &mut Criterion) {
    let mut rng = testutil::rng(7);
    let n = 50_000;
    let matrix = testutil::random_banded_stochastic(&mut rng, n, 5, 40);

    let mut group = c.benchmark_group("kernel_structure");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("transpose_50k", |b| b.iter(|| matrix.transpose()));

    let mask = StateMask::from_indices(n, 100usize..=120).unwrap();
    let v = testutil::random_distribution(&mut rng, n, 2_000);
    group.bench_function("masked_extract_sparse", |b| {
        b.iter_batched(
            || v.clone(),
            |mut v| v.extract_masked(&mask),
            criterion::BatchSize::SmallInput,
        )
    });
    let dense = v.to_dense();
    group.bench_function("masked_extract_dense", |b| {
        b.iter_batched(
            || dense.clone(),
            |mut d| d.extract_masked(&mask),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_sparse_ops(c: &mut Criterion) {
    let mut rng = testutil::rng(9);
    let n = 50_000;
    let a = testutil::random_distribution(&mut rng, n, 2_000);
    let b_vec = testutil::random_distribution(&mut rng, n, 2_000);
    let dense = b_vec.to_dense();

    let mut group = c.benchmark_group("kernel_sparse_vector_ops");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    group.bench_function("dot_sparse_sparse", |b| b.iter(|| a.dot_sparse(&b_vec).unwrap()));
    group.bench_function("dot_sparse_dense", |b| b.iter(|| a.dot_dense(&dense).unwrap()));
    group.bench_function("add_sparse", |b| b.iter(|| a.add(&b_vec).unwrap()));
    group.bench_function("from_dense_threshold", |b| {
        b.iter(|| SparseVector::from_dense(&dense, 1e-12))
    });
    group.finish();
}

criterion_group!(benches, bench_vecmat, bench_transpose_and_masks, bench_sparse_ops);
criterion_main!(benches);
