//! Criterion benches for the design-choice ablations:
//! virtual vs materialized augmented matrices, hybrid vector representation,
//! ε-pruning, and threshold early termination.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ust_core::engine::{object_based, EngineConfig};
use ust_core::{threshold, EvalStats};
use ust_data::workload;
use ust_data::{synthetic, SyntheticConfig};
use ust_markov::{augmented, DenseVector};

fn dataset() -> ust_data::SyntheticDataset {
    synthetic::generate(&SyntheticConfig {
        num_objects: 100,
        num_states: 4_000,
        ..SyntheticConfig::default()
    })
}

fn bench_augmented(c: &mut Criterion) {
    let data = dataset();
    let window = workload::paper_default_window(4_000).unwrap();
    let config = EngineConfig::default();
    let chain = data.db.models()[0].clone();

    let mut group = c.benchmark_group("ablation_augmented_operator");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("virtual_operator", |b| {
        b.iter(|| {
            object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
        })
    });
    group.bench_function("materialized_matrices", |b| {
        b.iter(|| {
            let minus = augmented::exists_minus(chain.matrix());
            let plus = augmented::exists_plus(chain.matrix(), window.states());
            let top = augmented::top_index(4_000);
            let mut out = Vec::with_capacity(data.db.len());
            for object in data.db.objects() {
                let mut v = DenseVector::zeros(4_001);
                for (s, p) in object.anchor().distribution().iter() {
                    v.set(s, p).unwrap();
                }
                for t in 0..window.t_end() {
                    let m = if window.time_in_window(t + 1) { &plus } else { &minus };
                    v = m.vecmat_dense(&v).unwrap();
                }
                out.push(v.get(top));
            }
            out
        })
    });
    group.finish();
}

fn bench_hybrid(c: &mut Criterion) {
    let data = dataset();
    let window = workload::paper_default_window(4_000).unwrap();

    let mut group = c.benchmark_group("ablation_hybrid_representation");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (label, threshold) in
        [("always_dense", 0.0), ("hybrid_default", 0.25), ("always_sparse", 1.0)]
    {
        let config = EngineConfig::default().with_densify_threshold(threshold);
        group.bench_with_input(BenchmarkId::new("OB", label), &label, |b, _| {
            b.iter(|| {
                object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_epsilon(c: &mut Criterion) {
    let data = dataset();
    let window = workload::paper_default_window(4_000).unwrap();

    let mut group = c.benchmark_group("ablation_epsilon_pruning");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (label, eps) in [("exact", 0.0), ("eps_1e-6", 1e-6), ("eps_1e-4", 1e-4)] {
        let config = EngineConfig::default().with_epsilon(eps);
        group.bench_with_input(BenchmarkId::new("OB", label), &label, |b, _| {
            b.iter(|| {
                object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_threshold(c: &mut Criterion) {
    let data = dataset();
    let window = workload::paper_default_window(4_000).unwrap();
    let config = EngineConfig::default();

    let mut group = c.benchmark_group("ablation_threshold_early_termination");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("exact_then_compare", |b| {
        b.iter(|| {
            object_based::evaluate(&data.db, &window, &config, &mut EvalStats::new())
                .unwrap()
                .iter()
                .filter(|r| r.probability >= 0.5)
                .count()
        })
    });
    group.bench_function("bounded_early_termination", |b| {
        b.iter(|| {
            threshold::threshold_query(&data.db, &window, 0.5, &config, &mut EvalStats::new())
                .unwrap()
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_augmented, bench_hybrid, bench_epsilon, bench_threshold);
criterion_main!(benches);
