//! Minimal, dependency-free drop-in for the subset of the `rand` 0.9 API
//! this workspace uses.
//!
//! The build environment is fully offline (no crates.io access), so the
//! workspace provides this local package under the same name instead of the
//! real crate. Only what the code base actually calls is implemented:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator;
//! * [`SeedableRng::seed_from_u64`] — splitmix64 seed expansion;
//! * [`Rng::random`] for `f64`, `f32`, `u32`, `u64` and `bool`;
//! * [`Rng::random_range`] over integer `Range` / `RangeInclusive`.
//!
//! Streams are *not* bit-compatible with the real `rand` crate; everything
//! in the workspace treats seeds as opaque determinism handles, so only
//! per-seed reproducibility matters.

/// Types that can be sampled uniformly by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from the generator's next output(s).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::random_range`]. Parameterized by the output
/// type (as in the real crate) so the expected result type drives integer
/// literal inference: `rng.random_range(0..10)` yields a `usize` where one
/// is expected.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                start + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64 + 1;
                (start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(isize, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, span)` by widening multiply (Lemire reduction,
/// bias ≤ 2⁻⁶⁴ — negligible for test and workload generation).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of an inferable [`Standard`] type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from an integer or float range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructing generators from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// `StdRng`; not stream-compatible, which the workspace never relies
    /// on).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..16).map(|_| a.random::<f64>()).collect();
        let ys: Vec<f64> = (0..16).map(|_| b.random::<f64>()).collect();
        let zs: Vec<f64> = (0..16).map(|_| c.random::<f64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_are_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0..5usize)] = true;
            let x = rng.random_range(2..=4u32);
            assert!((2..=4).contains(&x));
        }
        assert!(seen.iter().all(|&s| s));
    }
}
