//! Minimal, dependency-free drop-in for the subset of the `criterion` API
//! this workspace's benches use.
//!
//! The build environment is fully offline, so instead of the real harness
//! the workspace ships this miniature: it runs each benchmark closure for a
//! warm-up, then measures `sample_size` samples capped by
//! `measurement_time`, and prints `group/name  median ±spread` per-iteration
//! timings to stdout. No statistics beyond median/min/max, no HTML reports,
//! no comparison against saved baselines — but `cargo bench` compiles, runs
//! and produces usable relative numbers for every target.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_id/parameter`.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Batch sizing hints (accepted, not used for anything beyond API parity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// The top-level harness handle passed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name.to_string(), f);
        group.finish();
        self
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<I: Into<BenchName>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = self.label(&id.into());
        let mut samples = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement_time;
        // One warm-up sample, then timed samples until count or deadline.
        for i in 0..=self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            if i > 0 && b.iters > 0 {
                samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
            }
            if Instant::now() >= deadline && !samples.is_empty() {
                break;
            }
        }
        report(&label, &mut samples);
        self
    }

    /// Benchmarks a closure that receives `input` by reference.
    pub fn bench_with_input<I: Into<BenchName>, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}

    fn label(&self, name: &BenchName) -> String {
        if self.name.is_empty() {
            name.0.clone()
        } else {
            format!("{}/{}", self.name, name.0)
        }
    }
}

/// Anything usable as a benchmark name (`&str`, `String`, [`BenchmarkId`]).
#[derive(Debug, Clone)]
pub struct BenchName(String);

impl From<&str> for BenchName {
    fn from(s: &str) -> Self {
        BenchName(s.to_string())
    }
}

impl From<String> for BenchName {
    fn from(s: String) -> Self {
        BenchName(s)
    }
}

impl From<BenchmarkId> for BenchName {
    fn from(id: BenchmarkId) -> Self {
        BenchName(id.id)
    }
}

/// Passed to benchmark closures; accumulates timed iterations.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = 16u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }

    /// Times `routine` on inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = 16u64;
        let mut inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs.drain(..) {
            black_box(routine(input));
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }
}

fn report(label: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{label:<48} median {} (min {}, max {}, {} samples)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
        samples.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group runner: `criterion_group!(name, fn1, fn2);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render_as_path() {
        let id = BenchmarkId::new("sparse", 500);
        let name: BenchName = id.into();
        assert_eq!(name.0, "sparse/500");
    }

    #[test]
    fn harness_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2).measurement_time(Duration::from_millis(20));
        let mut calls = 0u64;
        group.bench_function("iter", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("input", 3), &3u32, |b, &x| {
            b.iter_batched(|| x, |v| v + 1, BatchSize::SmallInput)
        });
        group.finish();
        assert!(calls > 0);
    }
}
