//! Minimal, dependency-free drop-in for the subset of the `proptest` API
//! this workspace uses.
//!
//! The build environment is fully offline, so instead of the real crate the
//! workspace ships this deterministic miniature: strategies are sampled
//! (not shrunk) from a per-test seeded [`rand::rngs::StdRng`], every test
//! runs [`ProptestConfig::cases`] random cases, and `prop_assert*!`
//! failures report the failing case index and sampled inputs are
//! reproducible from the test name alone.
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), [`Strategy`] for integer and float
//! ranges plus tuples of strategies, [`prop_assert!`],
//! [`prop_assert_eq!`], [`prop_assume!`] and
//! [`ProptestConfig::with_cases`]. No shrinking is performed.

use rand::rngs::StdRng;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it does not count as a run.
    Reject,
    /// `prop_assert*!` failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure carrying `msg`.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// A source of random values (subset of `proptest::strategy::Strategy`;
/// sampling only, no shrink trees).
pub trait Strategy {
    /// The type of the generated values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        self.start + rand::Rng::random::<f64>(rng) * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        // Endpoint-exclusive sampling is indistinguishable for the
        // threshold-style properties this workspace states.
        self.start() + rand::Rng::random::<f64>(rng) * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// FNV-1a hash of the test name: the deterministic per-test seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests: each `#[test] fn name(pattern in strategy, ...)`
/// runs `cases` times with fresh samples. No shrinking; the failing case
/// index is reported and reproducible (sampling is seeded by the test
/// name).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                let mut accepted: u32 = 0;
                let mut case: u64 = 0;
                while accepted < config.cases {
                    case += 1;
                    if case > 20 * config.cases as u64 + 100 {
                        panic!(
                            "proptest {}: too many cases rejected by prop_assume! \
                             ({accepted} accepted after {case} draws)",
                            stringify!($name),
                        );
                    }
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed at case {case}: {msg}", stringify!($name))
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                        left, right
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: `{:?}`\n right: `{:?}`",
                        format!($($fmt)+),
                        left,
                        right
                    )));
                }
            }
        }
    };
}

/// Filters out cases that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn tuples_and_ranges_sample_in_bounds(
            (a, b) in (0u64..10, 2usize..=4),
            x in -1.5f64..2.5,
        ) {
            prop_assert!(a < 10);
            prop_assert!((2..=4).contains(&b), "b = {b}");
            prop_assert!((-1.5..2.5).contains(&x));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            fn inner(n in 0usize..4) {
                prop_assert!(n < 3, "saw n = {n}");
            }
        }
        inner();
    }
}
