//! Spatial query regions — the `S▫` component of a query window.
//!
//! The paper allows `S▫` to be "a set of (not necessarily connected)
//! locations in space". [`Region`] covers the geometric shapes applications
//! specify (rectangles, circles), raw state-id sets, and unions thereof;
//! [`Region::resolve`] maps any of them to the concrete state ids of a
//! [`StateSpace`].

use crate::point::Point2;
use crate::rect::Rect;
use crate::state_space::StateSpace;

/// A spatial predicate over the continuous embedding space.
#[derive(Debug, Clone, PartialEq)]
pub enum Region {
    /// All states inside an axis-aligned rectangle.
    Rect(Rect),
    /// All states within `radius` of `center`.
    Circle {
        /// Circle center.
        center: Point2,
        /// Circle radius (inclusive).
        radius: f64,
    },
    /// An explicit set of state ids (resolution is identity, after bounds
    /// filtering).
    StateIds(Vec<usize>),
    /// The union of several regions.
    Union(Vec<Region>),
}

impl Region {
    /// Convenience constructor for a rectangle from bounds.
    pub fn rect(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Region {
        Region::Rect(Rect::from_bounds(min_x, min_y, max_x, max_y))
    }

    /// Convenience constructor for a circle.
    pub fn circle(center: Point2, radius: f64) -> Region {
        Region::Circle { center, radius }
    }

    /// Resolves the region to the sorted, duplicate-free set of state ids
    /// of `space` that satisfy it.
    pub fn resolve<S: StateSpace + ?Sized>(&self, space: &S) -> Vec<usize> {
        let mut ids = self.collect_ids(space);
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn collect_ids<S: StateSpace + ?Sized>(&self, space: &S) -> Vec<usize> {
        match self {
            Region::Rect(rect) => space.states_in_rect(rect),
            Region::Circle { center, radius } => {
                let bbox = Rect::point(*center).expand(*radius);
                let r_sq = radius * radius;
                space
                    .states_in_rect(&bbox)
                    .into_iter()
                    .filter(|&id| space.location(id).distance_sq(center) <= r_sq)
                    .collect()
            }
            Region::StateIds(ids) => {
                ids.iter().copied().filter(|&id| id < space.num_states()).collect()
            }
            Region::Union(parts) => parts.iter().flat_map(|r| r.collect_ids(space)).collect(),
        }
    }

    /// Geometric membership test for a point; `None` for pure id sets,
    /// whose geometry depends on the state space.
    pub fn contains_point(&self, p: &Point2) -> Option<bool> {
        match self {
            Region::Rect(rect) => Some(rect.contains(p)),
            Region::Circle { center, radius } => Some(p.distance_sq(center) <= radius * radius),
            Region::StateIds(_) => None,
            Region::Union(parts) => {
                let mut any_known = false;
                for part in parts {
                    match part.contains_point(p) {
                        Some(true) => return Some(true),
                        Some(false) => any_known = true,
                        None => {}
                    }
                }
                if any_known {
                    Some(false)
                } else {
                    None
                }
            }
        }
    }

    /// A rectangle bounding the region's geometry, when derivable.
    pub fn bounding_rect(&self) -> Option<Rect> {
        match self {
            Region::Rect(rect) => Some(*rect),
            Region::Circle { center, radius } => Some(Rect::point(*center).expand(*radius)),
            Region::StateIds(_) => None,
            Region::Union(parts) => {
                let mut bounds = Rect::empty();
                for part in parts {
                    bounds = bounds.union(&part.bounding_rect()?);
                }
                Some(bounds)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpace;
    use crate::line::LineSpace;

    #[test]
    fn rect_region_on_grid() {
        let grid = GridSpace::new(4, 4);
        let r = Region::rect(0.0, 0.0, 1.6, 1.6);
        assert_eq!(r.resolve(&grid), vec![0, 1, 4, 5]);
    }

    #[test]
    fn circle_region_filters_by_distance() {
        let grid = GridSpace::new(3, 3);
        // Circle around the center cell (1.5, 1.5) with radius 1 covers the
        // center and its 4-neighborhood.
        let r = Region::circle(Point2::new(1.5, 1.5), 1.0);
        assert_eq!(r.resolve(&grid), vec![1, 3, 4, 5, 7]);
    }

    #[test]
    fn state_ids_filter_out_of_range() {
        let line = LineSpace::new(5);
        let r = Region::StateIds(vec![4, 1, 1, 99]);
        assert_eq!(r.resolve(&line), vec![1, 4]);
    }

    #[test]
    fn union_dedups() {
        let line = LineSpace::new(10);
        let r = Region::Union(vec![
            Region::StateIds(vec![1, 2]),
            Region::StateIds(vec![2, 3]),
            Region::rect(5.0, -1.0, 6.0, 1.0),
        ]);
        assert_eq!(r.resolve(&line), vec![1, 2, 3, 5, 6]);
    }

    #[test]
    fn contains_point_semantics() {
        let r = Region::rect(0.0, 0.0, 1.0, 1.0);
        assert_eq!(r.contains_point(&Point2::new(0.5, 0.5)), Some(true));
        assert_eq!(r.contains_point(&Point2::new(2.0, 0.5)), Some(false));
        assert_eq!(Region::StateIds(vec![0]).contains_point(&Point2::origin()), None);
        let u =
            Region::Union(vec![Region::StateIds(vec![0]), Region::circle(Point2::origin(), 1.0)]);
        assert_eq!(u.contains_point(&Point2::new(0.5, 0.0)), Some(true));
        assert_eq!(u.contains_point(&Point2::new(5.0, 5.0)), Some(false));
        let pure_ids = Region::Union(vec![Region::StateIds(vec![0])]);
        assert_eq!(pure_ids.contains_point(&Point2::origin()), None);
    }

    #[test]
    fn bounding_rects() {
        assert_eq!(
            Region::circle(Point2::new(1.0, 1.0), 2.0).bounding_rect(),
            Some(Rect::from_bounds(-1.0, -1.0, 3.0, 3.0))
        );
        assert_eq!(Region::StateIds(vec![1]).bounding_rect(), None);
        let u =
            Region::Union(vec![Region::rect(0.0, 0.0, 1.0, 1.0), Region::rect(4.0, 4.0, 5.0, 5.0)]);
        assert_eq!(u.bounding_rect(), Some(Rect::from_bounds(0.0, 0.0, 5.0, 5.0)));
        let mixed =
            Region::Union(vec![Region::rect(0.0, 0.0, 1.0, 1.0), Region::StateIds(vec![0])]);
        assert_eq!(mixed.bounding_rect(), None);
    }

    #[test]
    fn empty_union_resolves_empty() {
        let line = LineSpace::new(3);
        assert!(Region::Union(vec![]).resolve(&line).is_empty());
    }
}
