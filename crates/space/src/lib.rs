//! # ust-space — discrete spatial domains for uncertain spatio-temporal data
//!
//! The spatial substrate of the ICDE 2012 reproduction: the finite state
//! spaces `S ⊆ R^d` over which uncertain trajectories move, the query
//! regions `S▫` and time sets `T▫` that form query windows, road-network
//! graphs standing in for the paper's real datasets, and a from-scratch
//! R-tree for spatial resolution.
//!
//! * [`state_space::StateSpace`] — the state-space abstraction, implemented
//!   by [`grid::GridSpace`] (the raster of Fig. 2), [`line::LineSpace`]
//!   (the 1-D synthetic domain of the evaluation) and
//!   [`network::RoadNetwork`] (road graphs);
//! * [`region::Region`] — rectangle / circle / id-set / union query regions
//!   resolved against any state space;
//! * [`temporal::TimeSet`] — discrete, not-necessarily-contiguous query
//!   time sets;
//! * [`network_gen`] — generators for connected sparse road-like graphs
//!   with the exact node/edge counts of the paper's North America and
//!   Munich datasets (a documented substitution for the paper's real
//!   datasets — see the [`network_gen`] module docs);
//! * [`rtree::RTree`] — STR bulk-loaded point R-tree.

#![deny(missing_docs)]

pub mod grid;
pub mod line;
pub mod network;
pub mod network_gen;
pub mod point;
pub mod rect;
pub mod region;
pub mod rtree;
pub mod state_space;
pub mod temporal;

pub use grid::GridSpace;
pub use line::LineSpace;
pub use network::RoadNetwork;
pub use network_gen::NetworkConfig;
pub use point::Point2;
pub use rect::Rect;
pub use region::Region;
pub use rtree::{RTree, RTreeEntry};
pub use state_space::StateSpace;
pub use temporal::{IntervalIndex, TimeSet};
