//! Regular 2-D raster state spaces (the grid of Fig. 2 in the paper).
//!
//! Cells are unit squares identified row-major; the state location is the
//! cell center. The iceberg scenario of the paper's introduction is built on
//! this space (see `ust-data::iceberg`).

use crate::point::Point2;
use crate::rect::Rect;
use crate::state_space::StateSpace;

/// A `rows × cols` raster of unit cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSpace {
    rows: usize,
    cols: usize,
}

impl GridSpace {
    /// Creates a raster with `rows` rows and `cols` columns.
    pub fn new(rows: usize, cols: usize) -> Self {
        GridSpace { rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Converts `(row, col)` to a state id.
    pub fn cell_to_id(&self, row: usize, col: usize) -> Option<usize> {
        if row < self.rows && col < self.cols {
            Some(row * self.cols + col)
        } else {
            None
        }
    }

    /// Converts a state id back to `(row, col)`.
    pub fn id_to_cell(&self, id: usize) -> Option<(usize, usize)> {
        if id < self.num_states() {
            Some((id / self.cols, id % self.cols))
        } else {
            None
        }
    }

    /// The 4-neighborhood (von Neumann) of a cell, clipped at borders.
    pub fn neighbors4(&self, id: usize) -> Vec<usize> {
        let Some((r, c)) = self.id_to_cell(id) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(4);
        if r > 0 {
            out.push(id - self.cols);
        }
        if c > 0 {
            out.push(id - 1);
        }
        if c + 1 < self.cols {
            out.push(id + 1);
        }
        if r + 1 < self.rows {
            out.push(id + self.cols);
        }
        out
    }

    /// The 8-neighborhood (Moore) of a cell, clipped at borders.
    pub fn neighbors8(&self, id: usize) -> Vec<usize> {
        let Some((r, c)) = self.id_to_cell(id) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(8);
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let nr = r as i64 + dr;
                let nc = c as i64 + dc;
                if nr >= 0 && nc >= 0 {
                    if let Some(nid) = self.cell_to_id(nr as usize, nc as usize) {
                        out.push(nid);
                    }
                }
            }
        }
        out
    }
}

impl StateSpace for GridSpace {
    fn num_states(&self) -> usize {
        self.rows * self.cols
    }

    fn location(&self, id: usize) -> Point2 {
        let (r, c) = self.id_to_cell(id).unwrap_or_else(|| {
            // lint: allow(panicking-call-in-lib) — the `Space` trait's `location`
            // contract takes a state id of this space; an out-of-range id is a
            // construction bug in the caller, with no recoverable answer.
            panic!("state id {id} out of range for {}×{} grid", self.rows, self.cols)
        });
        Point2::new(c as f64 + 0.5, r as f64 + 0.5)
    }

    fn nearest_state(&self, p: &Point2) -> Option<usize> {
        if self.num_states() == 0 {
            return None;
        }
        let c = (p.x - 0.5).round().clamp(0.0, (self.cols - 1) as f64) as usize;
        let r = (p.y - 0.5).round().clamp(0.0, (self.rows - 1) as f64) as usize;
        self.cell_to_id(r, c)
    }

    fn states_in_rect(&self, rect: &Rect) -> Vec<usize> {
        if rect.is_empty() || self.num_states() == 0 {
            return Vec::new();
        }
        // Cell centers are at (c + 0.5, r + 0.5): solve for the covered range.
        let c_lo = (rect.min.x - 0.5).ceil().max(0.0) as usize;
        let c_hi = (rect.max.x - 0.5).floor().min((self.cols - 1) as f64);
        let r_lo = (rect.min.y - 0.5).ceil().max(0.0) as usize;
        let r_hi = (rect.max.y - 0.5).floor().min((self.rows - 1) as f64);
        if c_hi < 0.0 || r_hi < 0.0 {
            return Vec::new();
        }
        let (c_hi, r_hi) = (c_hi as usize, r_hi as usize);
        let mut out = Vec::new();
        for r in r_lo..=r_hi {
            for c in c_lo..=c_hi {
                if let Some(id) = self.cell_to_id(r, c) {
                    out.push(id);
                }
            }
        }
        out
    }

    fn bounding_box(&self) -> Rect {
        if self.num_states() == 0 {
            Rect::empty()
        } else {
            Rect::from_bounds(0.5, 0.5, self.cols as f64 - 0.5, self.rows as f64 - 0.5)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_cell_roundtrip() {
        let g = GridSpace::new(3, 4);
        assert_eq!(g.num_states(), 12);
        assert_eq!(g.cell_to_id(2, 3), Some(11));
        assert_eq!(g.id_to_cell(11), Some((2, 3)));
        assert_eq!(g.cell_to_id(3, 0), None);
        assert_eq!(g.id_to_cell(12), None);
        for id in 0..g.num_states() {
            let (r, c) = g.id_to_cell(id).unwrap();
            assert_eq!(g.cell_to_id(r, c), Some(id));
        }
    }

    #[test]
    fn locations_are_cell_centers() {
        let g = GridSpace::new(2, 2);
        assert_eq!(g.location(0), Point2::new(0.5, 0.5));
        assert_eq!(g.location(3), Point2::new(1.5, 1.5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn location_panics_out_of_range() {
        GridSpace::new(2, 2).location(4);
    }

    #[test]
    fn neighbors_clip_at_borders() {
        let g = GridSpace::new(3, 3);
        assert_eq!(g.neighbors4(4), vec![1, 3, 5, 7]); // center
        assert_eq!(g.neighbors4(0), vec![1, 3]); // corner
        assert_eq!(g.neighbors8(0), vec![1, 3, 4]);
        assert_eq!(g.neighbors8(4).len(), 8);
        assert!(g.neighbors4(99).is_empty());
    }

    #[test]
    fn nearest_state_clamps() {
        let g = GridSpace::new(2, 3);
        assert_eq!(g.nearest_state(&Point2::new(-10.0, -10.0)), Some(0));
        assert_eq!(g.nearest_state(&Point2::new(100.0, 100.0)), Some(5));
        assert_eq!(g.nearest_state(&Point2::new(1.4, 0.6)), Some(1));
        assert_eq!(GridSpace::new(0, 0).nearest_state(&Point2::origin()), None);
    }

    #[test]
    fn states_in_rect_matches_linear_scan() {
        let g = GridSpace::new(5, 7);
        let rects = [
            Rect::from_bounds(0.0, 0.0, 3.0, 2.0),
            Rect::from_bounds(2.5, 1.5, 2.5, 1.5),
            Rect::from_bounds(-5.0, -5.0, 100.0, 100.0),
            Rect::from_bounds(6.9, 4.9, 7.2, 5.2),
            Rect::from_bounds(10.0, 10.0, 11.0, 11.0),
        ];
        for rect in rects {
            let fast = g.states_in_rect(&rect);
            let slow: Vec<usize> =
                (0..g.num_states()).filter(|&i| rect.contains(&g.location(i))).collect();
            assert_eq!(fast, slow, "rect {rect:?}");
        }
        assert!(g.states_in_rect(&Rect::empty()).is_empty());
    }

    #[test]
    fn bounding_box_covers_centers() {
        let g = GridSpace::new(2, 3);
        let bb = g.bounding_box();
        for id in 0..g.num_states() {
            assert!(bb.contains(&g.location(id)));
        }
        assert!(GridSpace::new(0, 5).bounding_box().is_empty());
    }
}
