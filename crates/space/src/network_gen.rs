//! Synthetic road-network generators.
//!
//! The paper evaluates on two proprietary-to-obtain datasets: the North
//! America road network (175,813 nodes / 179,102 edges) and the Munich road
//! network (73,120 nodes / 93,925 edges). We do not have those files, so
//! this module generates **connected, sparse, near-planar graphs with the
//! same node/edge counts**. The experiments only exploit (a) graph sparsity
//! — the transition matrix is the adjacency matrix — and (b) random
//! row-normalized transition weights, both of which the generator
//! reproduces; absolute coordinates never enter the measured kernels.
//!
//! Construction: nodes are scattered uniformly, ordered along a serpentine
//! coarse-grid space-filling curve and chained into a spanning path (local,
//! road-like edges), then the remaining edge budget connects random nodes to
//! *spatially nearby* nodes via a uniform grid hash.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::network::RoadNetwork;
use crate::point::Point2;

/// Parameters for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Number of nodes (states).
    pub num_nodes: usize,
    /// Target number of undirected edges (≥ `num_nodes − 1`; clipped below).
    pub num_edges: usize,
    /// Side length of the square embedding area.
    pub extent: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Preset matching the paper's North America road network
/// (175,813 nodes, 179,102 edges — mean degree ≈ 2.04).
pub fn na_like(seed: u64) -> NetworkConfig {
    NetworkConfig { num_nodes: 175_813, num_edges: 179_102, extent: 4_000.0, seed }
}

/// Preset matching the paper's Munich road network
/// (73,120 nodes, 93,925 edges — mean degree ≈ 2.57).
pub fn munich_like(seed: u64) -> NetworkConfig {
    NetworkConfig { num_nodes: 73_120, num_edges: 93_925, extent: 1_500.0, seed }
}

/// A small city-scale preset for tests and examples.
pub fn small_city(seed: u64) -> NetworkConfig {
    NetworkConfig { num_nodes: 2_000, num_edges: 2_600, extent: 100.0, seed }
}

/// Generates a connected road-like network for `config`.
pub fn generate(config: &NetworkConfig) -> RoadNetwork {
    let n = config.num_nodes;
    if n == 0 {
        return RoadNetwork::from_edges(vec![], &[]);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let coords: Vec<Point2> = (0..n)
        .map(|_| {
            Point2::new(rng.random::<f64>() * config.extent, rng.random::<f64>() * config.extent)
        })
        .collect();

    // Coarse grid for both the space-filling ordering and neighbor lookups.
    let cells_per_side = ((n as f64).sqrt() / 2.0).ceil().max(1.0) as usize;
    let cell_size = config.extent / cells_per_side as f64;
    let cell_of = |p: &Point2| -> (usize, usize) {
        let cx = (p.x / cell_size).floor().clamp(0.0, (cells_per_side - 1) as f64) as usize;
        let cy = (p.y / cell_size).floor().clamp(0.0, (cells_per_side - 1) as f64) as usize;
        (cx, cy)
    };

    // Bucket nodes by cell.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (id, p) in coords.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        buckets[cy * cells_per_side + cx].push(id as u32);
    }

    // Serpentine order over cells: left→right on even rows, right→left on
    // odd rows, so consecutive nodes are spatially close.
    let mut order: Vec<u32> = Vec::with_capacity(n);
    for cy in 0..cells_per_side {
        let xs: Box<dyn Iterator<Item = usize>> = if cy % 2 == 0 {
            Box::new(0..cells_per_side)
        } else {
            Box::new((0..cells_per_side).rev())
        };
        for cx in xs {
            let bucket = &mut buckets[cy * cells_per_side + cx];
            bucket.sort_unstable_by(|&a, &b| coords[a as usize].x.total_cmp(&coords[b as usize].x));
            order.extend_from_slice(bucket);
        }
    }

    // Spanning path along the serpentine order: n − 1 edges, connected.
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(config.num_edges);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(config.num_edges * 2);
    let add_edge =
        |edges: &mut Vec<(usize, usize)>, seen: &mut HashSet<(u32, u32)>, u: u32, v: u32| -> bool {
            if u == v {
                return false;
            }
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                edges.push((u as usize, v as usize));
                true
            } else {
                false
            }
        };
    for w in order.windows(2) {
        add_edge(&mut edges, &mut seen, w[0], w[1]);
    }

    // Extra edges: connect random nodes to a random node of a nearby cell.
    let target = config.num_edges.max(n.saturating_sub(1));
    let mut attempts = 0usize;
    let max_attempts = target.saturating_sub(edges.len()) * 20 + 100;
    while edges.len() < target && attempts < max_attempts {
        attempts += 1;
        let u = rng.random_range(0..n) as u32;
        let (cx, cy) = cell_of(&coords[u as usize]);
        let dx = rng.random_range(0..3) as i64 - 1;
        let dy = rng.random_range(0..3) as i64 - 1;
        let nx = cx as i64 + dx;
        let ny = cy as i64 + dy;
        if nx < 0 || ny < 0 || nx >= cells_per_side as i64 || ny >= cells_per_side as i64 {
            continue;
        }
        let bucket = &buckets[ny as usize * cells_per_side + nx as usize];
        if bucket.is_empty() {
            continue;
        }
        let v = bucket[rng.random_range(0..bucket.len())];
        add_edge(&mut edges, &mut seen, u, v);
    }

    RoadNetwork::from_edges(coords, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_network_matches_config_and_is_connected() {
        let cfg = small_city(11);
        let g = generate(&cfg);
        assert_eq!(g.num_nodes(), cfg.num_nodes);
        assert_eq!(g.num_edges(), cfg.num_edges);
        assert!(g.is_connected());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = NetworkConfig { num_nodes: 300, num_edges: 400, extent: 50.0, seed: 3 };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&NetworkConfig { num_nodes: 200, num_edges: 260, extent: 50.0, seed: 1 });
        let b = generate(&NetworkConfig { num_nodes: 200, num_edges: 260, extent: 50.0, seed: 2 });
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn edges_are_local() {
        // Road networks have short edges; the serpentine + grid-hash
        // construction should keep the mean edge length well under the
        // extent.
        let cfg = NetworkConfig { num_nodes: 1_000, num_edges: 1_300, extent: 100.0, seed: 5 };
        let g = generate(&cfg);
        let mut total = 0.0;
        let mut count = 0usize;
        for (u, v) in g.edges() {
            total += g.location(u).distance(&g.location(v));
            count += 1;
        }
        let mean = total / count as f64;
        assert!(mean < 15.0, "mean edge length {mean} too large for extent 100");
    }

    #[test]
    fn presets_have_paper_sizes() {
        let na = na_like(0);
        assert_eq!(na.num_nodes, 175_813);
        assert_eq!(na.num_edges, 179_102);
        let munich = munich_like(0);
        assert_eq!(munich.num_nodes, 73_120);
        assert_eq!(munich.num_edges, 93_925);
    }

    #[test]
    fn degenerate_sizes() {
        let empty = generate(&NetworkConfig { num_nodes: 0, num_edges: 0, extent: 1.0, seed: 0 });
        assert_eq!(empty.num_nodes(), 0);
        let single = generate(&NetworkConfig { num_nodes: 1, num_edges: 5, extent: 1.0, seed: 0 });
        assert_eq!(single.num_nodes(), 1);
        assert_eq!(single.num_edges(), 0);
        let pair = generate(&NetworkConfig { num_nodes: 2, num_edges: 1, extent: 1.0, seed: 0 });
        assert!(pair.is_connected());
    }

    use crate::state_space::StateSpace;
}
