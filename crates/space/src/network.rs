//! Road networks as state spaces.
//!
//! The paper's real-data experiments treat road-network nodes as states and
//! edges as the allowed transitions: "each node is treated as a state and
//! each edge corresponds to two non-zero entries in the transition matrix".
//! [`RoadNetwork`] stores an undirected graph in CSR adjacency form (compact
//! enough for the paper's 175,813-node North-America graph) with planar node
//! coordinates, and implements [`StateSpace`] backed by a lazily built
//! R-tree for region resolution.

use std::sync::OnceLock;

use crate::point::Point2;
use crate::rect::Rect;
use crate::rtree::{RTree, RTreeEntry};
use crate::state_space::StateSpace;

/// An undirected road network with embedded nodes.
#[derive(Debug)]
pub struct RoadNetwork {
    coords: Vec<Point2>,
    offsets: Vec<usize>,
    adjacency: Vec<u32>,
    index: OnceLock<RTree>,
}

impl Clone for RoadNetwork {
    fn clone(&self) -> Self {
        RoadNetwork {
            coords: self.coords.clone(),
            offsets: self.offsets.clone(),
            adjacency: self.adjacency.clone(),
            index: OnceLock::new(),
        }
    }
}

impl RoadNetwork {
    /// Builds a network from node coordinates and undirected edges.
    /// Self-loops and duplicate edges are dropped; edges referencing
    /// out-of-range nodes are ignored.
    pub fn from_edges(coords: Vec<Point2>, edges: &[(usize, usize)]) -> Self {
        let n = coords.len();
        // Count valid directed arcs.
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            if u < n && v < n && u != v {
                pairs.push((u as u32, v as u32));
                pairs.push((v as u32, u as u32));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut offsets = vec![0usize; n + 1];
        for &(u, _) in &pairs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let adjacency: Vec<u32> = pairs.into_iter().map(|(_, v)| v).collect();
        RoadNetwork { coords, offsets, adjacency, index: OnceLock::new() }
    }

    /// Number of nodes (= states).
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.len() / 2
    }

    /// Neighbors of node `id`.
    pub fn neighbors(&self, id: usize) -> &[u32] {
        &self.adjacency[self.offsets[id]..self.offsets[id + 1]]
    }

    /// Degree of node `id`.
    pub fn degree(&self, id: usize) -> usize {
        self.offsets[id + 1] - self.offsets[id]
    }

    /// Average node degree (`2·|E| / |V|`).
    pub fn mean_degree(&self) -> f64 {
        if self.coords.is_empty() {
            0.0
        } else {
            self.adjacency.len() as f64 / self.coords.len() as f64
        }
    }

    /// Iterates all undirected edges once (`u < v`).
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.num_nodes()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| (v as usize) > u)
                .map(move |&v| (u, v as usize))
        })
    }

    /// Breadth-first search from `start`, returning the visited node set.
    pub fn bfs(&self, start: usize) -> Vec<bool> {
        let mut visited = vec![false; self.num_nodes()];
        if start >= self.num_nodes() {
            return visited;
        }
        let mut queue = std::collections::VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                let v = v as usize;
                if !visited[v] {
                    visited[v] = true;
                    queue.push_back(v);
                }
            }
        }
        visited
    }

    /// True when the graph is connected (vacuously true when empty).
    pub fn is_connected(&self) -> bool {
        if self.num_nodes() == 0 {
            return true;
        }
        self.bfs(0).iter().all(|&v| v)
    }

    /// The number of connected components.
    pub fn component_count(&self) -> usize {
        let n = self.num_nodes();
        let mut visited = vec![false; n];
        let mut count = 0;
        let mut queue = std::collections::VecDeque::new();
        for s in 0..n {
            if visited[s] {
                continue;
            }
            count += 1;
            visited[s] = true;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for &v in self.neighbors(u) {
                    let v = v as usize;
                    if !visited[v] {
                        visited[v] = true;
                        queue.push_back(v);
                    }
                }
            }
        }
        count
    }

    /// The lazily built spatial index over node locations.
    pub fn spatial_index(&self) -> &RTree {
        self.index.get_or_init(|| {
            RTree::bulk_load(
                self.coords
                    .iter()
                    .enumerate()
                    .map(|(id, &point)| RTreeEntry { point, id })
                    .collect(),
            )
        })
    }
}

impl StateSpace for RoadNetwork {
    fn num_states(&self) -> usize {
        self.num_nodes()
    }

    fn location(&self, id: usize) -> Point2 {
        self.coords[id]
    }

    fn nearest_state(&self, p: &Point2) -> Option<usize> {
        self.spatial_index().nearest(p).map(|e| e.id)
    }

    fn states_in_rect(&self, rect: &Rect) -> Vec<usize> {
        let mut ids = self.spatial_index().query_rect(rect);
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-node square with one diagonal:  0 — 1
    ///                                     | \ |
    ///                                     3 — 2
    fn square() -> RoadNetwork {
        RoadNetwork::from_edges(
            vec![
                Point2::new(0.0, 1.0),
                Point2::new(1.0, 1.0),
                Point2::new(1.0, 0.0),
                Point2::new(0.0, 0.0),
            ],
            &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
        )
    }

    #[test]
    fn construction_counts() {
        let g = square();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert!((g.mean_degree() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn self_loops_duplicates_and_bad_edges_are_dropped() {
        let g = RoadNetwork::from_edges(
            vec![Point2::origin(), Point2::new(1.0, 0.0)],
            &[(0, 0), (0, 1), (1, 0), (0, 1), (0, 9)],
        );
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = square();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn connectivity() {
        assert!(square().is_connected());
        assert_eq!(square().component_count(), 1);
        let disconnected = RoadNetwork::from_edges(
            vec![Point2::origin(), Point2::new(1.0, 0.0), Point2::new(2.0, 0.0)],
            &[(0, 1)],
        );
        assert!(!disconnected.is_connected());
        assert_eq!(disconnected.component_count(), 2);
        let empty = RoadNetwork::from_edges(vec![], &[]);
        assert!(empty.is_connected());
        assert_eq!(empty.component_count(), 0);
    }

    #[test]
    fn state_space_queries_use_index() {
        let g = square();
        assert_eq!(g.nearest_state(&Point2::new(0.1, 0.9)), Some(0));
        assert_eq!(g.states_in_rect(&Rect::from_bounds(0.5, -0.5, 1.5, 1.5)), vec![1, 2]);
        assert_eq!(g.num_states(), 4);
        assert_eq!(g.location(3), Point2::new(0.0, 0.0));
    }

    #[test]
    fn bfs_marks_reachable_nodes() {
        let g = RoadNetwork::from_edges(
            vec![Point2::origin(), Point2::new(1.0, 0.0), Point2::new(2.0, 0.0)],
            &[(1, 2)],
        );
        let from0 = g.bfs(0);
        assert_eq!(from0, vec![true, false, false]);
        let from1 = g.bfs(1);
        assert_eq!(from1, vec![false, true, true]);
        assert!(g.bfs(99).iter().all(|&v| !v));
    }

    #[test]
    fn clone_rebuilds_index_lazily() {
        let g = square();
        let _ = g.spatial_index();
        let c = g.clone();
        assert_eq!(c.nearest_state(&Point2::new(1.0, 0.0)), Some(2));
    }
}
