//! Axis-aligned rectangles (bounding boxes and rectangular query regions).

use crate::point::Point2;

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]` (closed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point2,
    /// Upper-right corner.
    pub max: Point2,
}

impl Rect {
    /// Creates a rectangle from two corners, normalizing their order.
    pub fn new(a: Point2, b: Point2) -> Self {
        Rect {
            min: Point2::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle from coordinate bounds.
    pub fn from_bounds(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Rect::new(Point2::new(min_x, min_y), Point2::new(max_x, max_y))
    }

    /// The degenerate rectangle containing only `p`.
    pub fn point(p: Point2) -> Self {
        Rect { min: p, max: p }
    }

    /// An "empty" rectangle that unions as the identity element.
    pub fn empty() -> Self {
        Rect {
            min: Point2::new(f64::INFINITY, f64::INFINITY),
            max: Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// True when no point satisfies the bounds.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width along x.
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height along y.
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area (zero for empty or degenerate rectangles).
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Point2 {
        self.min.midpoint(&self.max)
    }

    /// Closed containment test.
    pub fn contains(&self, p: &Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True when the rectangles share at least one point.
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// True when `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        !other.is_empty()
            && self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// Smallest rectangle covering both operands.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            min: Point2::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point2::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Grows the rectangle by `margin` on every side.
    pub fn expand(&self, margin: f64) -> Rect {
        Rect { min: self.min.translate(-margin, -margin), max: self.max.translate(margin, margin) }
    }

    /// Minimum distance from `p` to the rectangle (0 when inside).
    pub fn distance_to_point(&self, p: &Point2) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Upper bound on [`Rect::distance_to_point`] over every point of
    /// `other`: no point inside `other` is farther than this from the
    /// rectangle. (The per-axis gaps maximize at `other`'s corners; taking
    /// both maxima jointly may name a corner `other` doesn't have, so the
    /// bound is conservative, not tight.)
    pub fn max_distance_to_rect(&self, other: &Rect) -> f64 {
        let dx = (self.min.x - other.min.x).max(0.0).max(other.max.x - self.max.x);
        let dy = (self.min.y - other.min.y).max(0.0).max(other.max.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes_corners() {
        let r = Rect::new(Point2::new(5.0, 1.0), Point2::new(2.0, 4.0));
        assert_eq!(r.min, Point2::new(2.0, 1.0));
        assert_eq!(r.max, Point2::new(5.0, 4.0));
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 3.0);
        assert_eq!(r.area(), 9.0);
        assert_eq!(r.center(), Point2::new(3.5, 2.5));
    }

    #[test]
    fn containment_is_closed() {
        let r = Rect::from_bounds(0.0, 0.0, 2.0, 2.0);
        assert!(r.contains(&Point2::new(0.0, 0.0)));
        assert!(r.contains(&Point2::new(2.0, 2.0)));
        assert!(r.contains(&Point2::new(1.0, 1.0)));
        assert!(!r.contains(&Point2::new(2.1, 1.0)));
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::from_bounds(0.0, 0.0, 2.0, 2.0);
        let b = Rect::from_bounds(2.0, 2.0, 3.0, 3.0); // touching corner
        let c = Rect::from_bounds(2.5, 0.0, 3.0, 1.0); // disjoint
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!a.intersects(&Rect::empty()));
    }

    #[test]
    fn union_and_empty_identity() {
        let a = Rect::from_bounds(0.0, 0.0, 1.0, 1.0);
        let b = Rect::from_bounds(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert_eq!(u, Rect::from_bounds(0.0, -1.0, 3.0, 1.0));
        assert_eq!(Rect::empty().union(&a), a);
        assert_eq!(a.union(&Rect::empty()), a);
        assert!(Rect::empty().is_empty());
        assert_eq!(Rect::empty().area(), 0.0);
    }

    #[test]
    fn contains_rect_and_expand() {
        let a = Rect::from_bounds(0.0, 0.0, 4.0, 4.0);
        let b = Rect::from_bounds(1.0, 1.0, 2.0, 2.0);
        assert!(a.contains_rect(&b));
        assert!(!b.contains_rect(&a));
        assert!(!a.contains_rect(&Rect::empty()));
        assert!(b.expand(1.5).contains_rect(&Rect::from_bounds(0.0, 0.0, 3.0, 3.0)));
    }

    #[test]
    fn point_distance() {
        let r = Rect::from_bounds(0.0, 0.0, 1.0, 1.0);
        assert_eq!(r.distance_to_point(&Point2::new(0.5, 0.5)), 0.0);
        assert_eq!(r.distance_to_point(&Point2::new(4.0, 1.0)), 3.0);
        assert!((r.distance_to_point(&Point2::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
    }
}
