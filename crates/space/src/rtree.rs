//! A from-scratch R-tree over point data (STR bulk loading).
//!
//! Used to resolve spatial query regions against large state spaces (road
//! networks with ~175k nodes) and to prefilter candidate objects by their
//! reachability cone. Built with the Sort-Tile-Recursive packing algorithm:
//! entries are tiled into `√P × √P` slabs so sibling boxes overlap little,
//! then upper levels are packed recursively from the leaf bounding boxes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::point::Point2;
use crate::rect::Rect;

/// Maximum entries per node.
const NODE_CAPACITY: usize = 16;

/// A point payload stored in the tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RTreeEntry {
    /// Location of the entry.
    pub point: Point2,
    /// Caller-supplied identifier (state id, object id, …).
    pub id: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { bbox: Rect, entries: Vec<RTreeEntry> },
    Internal { bbox: Rect, children: Vec<Node> },
}

impl Node {
    fn bbox(&self) -> &Rect {
        match self {
            Node::Leaf { bbox, .. } | Node::Internal { bbox, .. } => bbox,
        }
    }
}

/// A static (bulk-loaded) R-tree over points.
#[derive(Debug, Clone)]
pub struct RTree {
    root: Option<Node>,
    len: usize,
    height: usize,
}

impl RTree {
    /// Bulk-loads the tree from `entries` using STR packing.
    pub fn bulk_load(mut entries: Vec<RTreeEntry>) -> Self {
        let len = entries.len();
        if len == 0 {
            return RTree { root: None, len: 0, height: 0 };
        }
        // Tile into vertical slabs by x, then pack leaves by y within slabs.
        let leaf_count = len.div_ceil(NODE_CAPACITY);
        let slab_count = (leaf_count as f64).sqrt().ceil() as usize;
        let slab_size = len.div_ceil(slab_count);
        entries.sort_unstable_by(|a, b| a.point.x.total_cmp(&b.point.x));
        let mut leaves: Vec<Node> = Vec::with_capacity(leaf_count);
        for slab in entries.chunks_mut(slab_size.max(1)) {
            slab.sort_unstable_by(|a, b| a.point.y.total_cmp(&b.point.y));
            for chunk in slab.chunks(NODE_CAPACITY) {
                let mut bbox = Rect::empty();
                for e in chunk {
                    bbox = bbox.union(&Rect::point(e.point));
                }
                leaves.push(Node::Leaf { bbox, entries: chunk.to_vec() });
            }
        }
        let mut height = 1;
        let mut level = leaves;
        while level.len() > 1 {
            level = Self::pack_level(level);
            height += 1;
        }
        RTree { root: level.pop(), len, height }
    }

    /// Packs one level of nodes into parents using STR on the box centers.
    fn pack_level(mut nodes: Vec<Node>) -> Vec<Node> {
        let parent_count = nodes.len().div_ceil(NODE_CAPACITY);
        let slab_count = (parent_count as f64).sqrt().ceil() as usize;
        let slab_size = nodes.len().div_ceil(slab_count);
        nodes.sort_unstable_by(|a, b| a.bbox().center().x.total_cmp(&b.bbox().center().x));
        let mut parents = Vec::with_capacity(parent_count);
        let mut rest = nodes.as_mut_slice();
        while !rest.is_empty() {
            let take = slab_size.max(1).min(rest.len());
            let (slab, tail) = rest.split_at_mut(take);
            slab.sort_unstable_by(|a, b| a.bbox().center().y.total_cmp(&b.bbox().center().y));
            for chunk in slab.chunks(NODE_CAPACITY) {
                let mut bbox = Rect::empty();
                for n in chunk {
                    bbox = bbox.union(n.bbox());
                }
                parents.push(Node::Internal { bbox, children: chunk.to_vec() });
            }
            rest = tail;
        }
        parents
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels (0 for an empty tree).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Ids of all entries whose point lies inside `rect` (unsorted).
    pub fn query_rect(&self, rect: &Rect) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit_rect(rect, &mut |e| out.push(e.id));
        out
    }

    /// Calls `f` for every entry inside `rect`.
    pub fn visit_rect(&self, rect: &Rect, f: &mut impl FnMut(&RTreeEntry)) {
        let Some(root) = &self.root else {
            return;
        };
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            match node {
                Node::Leaf { bbox, entries } => {
                    if rect.intersects(bbox) {
                        for e in entries {
                            if rect.contains(&e.point) {
                                f(e);
                            }
                        }
                    }
                }
                Node::Internal { bbox, children } => {
                    if rect.intersects(bbox) {
                        for c in children {
                            stack.push(c);
                        }
                    }
                }
            }
        }
    }

    /// Calls `f` once per leaf whose bounding box intersects `rect`, with
    /// the leaf's box and its *complete* entry slice — including entries
    /// outside `rect`. Callers that batch-accept whole leaves (e.g. when
    /// the leaf box is provably inside the match region) avoid the
    /// per-entry containment tests [`RTree::visit_rect`] performs; callers
    /// that need exact semantics must filter the slice themselves.
    pub fn visit_leaves(&self, rect: &Rect, f: &mut impl FnMut(&Rect, &[RTreeEntry])) {
        let Some(root) = &self.root else {
            return;
        };
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            match node {
                Node::Leaf { bbox, entries } => {
                    if rect.intersects(bbox) {
                        f(bbox, entries);
                    }
                }
                Node::Internal { bbox, children } => {
                    if rect.intersects(bbox) {
                        for c in children {
                            stack.push(c);
                        }
                    }
                }
            }
        }
    }

    /// Ids of all entries within Euclidean `radius` of `center` (unsorted).
    pub fn query_radius(&self, center: &Point2, radius: f64) -> Vec<usize> {
        let bbox = Rect::point(*center).expand(radius);
        let r_sq = radius * radius;
        let mut out = Vec::new();
        self.visit_rect(&bbox, &mut |e| {
            if e.point.distance_sq(center) <= r_sq {
                out.push(e.id);
            }
        });
        out
    }

    /// The entry nearest to `p` (best-first branch-and-bound), or `None`
    /// for an empty tree.
    pub fn nearest(&self, p: &Point2) -> Option<RTreeEntry> {
        struct Candidate<'a> {
            dist: f64,
            node: Option<&'a Node>,
            entry: Option<RTreeEntry>,
        }
        impl PartialEq for Candidate<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist
            }
        }
        impl Eq for Candidate<'_> {}
        impl PartialOrd for Candidate<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Candidate<'_> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.dist.total_cmp(&other.dist)
            }
        }

        let root = self.root.as_ref()?;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse(Candidate {
            dist: root.bbox().distance_to_point(p),
            node: Some(root),
            entry: None,
        }));
        while let Some(Reverse(cand)) = heap.pop() {
            if let Some(entry) = cand.entry {
                return Some(entry); // closest possible candidate reached
            }
            // lint: allow(panicking-call-in-lib) — entry candidates return
            // early above; every candidate left on the heap was pushed with a node.
            match cand.node.expect("non-entry candidates carry a node") {
                Node::Leaf { entries, .. } => {
                    for e in entries {
                        heap.push(Reverse(Candidate {
                            dist: e.point.distance(p),
                            node: None,
                            entry: Some(*e),
                        }));
                    }
                }
                Node::Internal { children, .. } => {
                    for c in children {
                        heap.push(Reverse(Candidate {
                            dist: c.bbox().distance_to_point(p),
                            node: Some(c),
                            entry: None,
                        }));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_entries(seed: u64, n: usize) -> Vec<RTreeEntry> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|id| RTreeEntry {
                point: Point2::new(rng.random::<f64>() * 100.0, rng.random::<f64>() * 100.0),
                id,
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = RTree::bulk_load(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.query_rect(&Rect::from_bounds(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(t.nearest(&Point2::origin()).is_none());
    }

    #[test]
    fn rect_queries_match_linear_scan() {
        for n in [1usize, 15, 16, 17, 100, 1000] {
            let entries = random_entries(7 + n as u64, n);
            let tree = RTree::bulk_load(entries.clone());
            assert_eq!(tree.len(), n);
            let rects = [
                Rect::from_bounds(10.0, 10.0, 40.0, 60.0),
                Rect::from_bounds(0.0, 0.0, 100.0, 100.0),
                Rect::from_bounds(99.5, 99.5, 100.0, 100.0),
                Rect::from_bounds(-10.0, -10.0, -1.0, -1.0),
            ];
            for rect in rects {
                let mut got = tree.query_rect(&rect);
                got.sort_unstable();
                let expected: Vec<usize> =
                    entries.iter().filter(|e| rect.contains(&e.point)).map(|e| e.id).collect();
                assert_eq!(got, expected, "n={n}, rect={rect:?}");
            }
        }
    }

    #[test]
    fn radius_queries_match_linear_scan() {
        let entries = random_entries(42, 500);
        let tree = RTree::bulk_load(entries.clone());
        let center = Point2::new(50.0, 50.0);
        for radius in [0.0, 5.0, 25.0, 200.0] {
            let mut got = tree.query_radius(&center, radius);
            got.sort_unstable();
            let expected: Vec<usize> = entries
                .iter()
                .filter(|e| e.point.distance(&center) <= radius)
                .map(|e| e.id)
                .collect();
            assert_eq!(got, expected, "radius={radius}");
        }
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let entries = random_entries(3, 800);
        let tree = RTree::bulk_load(entries.clone());
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let p =
                Point2::new(rng.random::<f64>() * 120.0 - 10.0, rng.random::<f64>() * 120.0 - 10.0);
            let got = tree.nearest(&p).unwrap();
            let best = entries
                .iter()
                .min_by(|a, b| a.point.distance_sq(&p).total_cmp(&b.point.distance_sq(&p)))
                .unwrap();
            assert!(
                (got.point.distance(&p) - best.point.distance(&p)).abs() < 1e-12,
                "nearest mismatch at {p:?}"
            );
        }
    }

    #[test]
    fn height_grows_logarithmically() {
        let t16 = RTree::bulk_load(random_entries(1, 16));
        assert_eq!(t16.height(), 1);
        let t5000 = RTree::bulk_load(random_entries(2, 5000));
        assert!(t5000.height() >= 3, "height {}", t5000.height());
        assert!(t5000.height() <= 5, "height {}", t5000.height());
    }

    #[test]
    fn duplicate_points_are_all_reported() {
        let entries = vec![
            RTreeEntry { point: Point2::new(1.0, 1.0), id: 0 },
            RTreeEntry { point: Point2::new(1.0, 1.0), id: 1 },
            RTreeEntry { point: Point2::new(2.0, 2.0), id: 2 },
        ];
        let tree = RTree::bulk_load(entries);
        let mut got = tree.query_rect(&Rect::from_bounds(0.5, 0.5, 1.5, 1.5));
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }
}
