//! The discrete state space abstraction `S = {s_1, …, s_|S|} ⊆ R^d`.

use crate::point::Point2;
use crate::rect::Rect;

/// A finite set of spatial states, each embedded at a planar location.
///
/// The paper's model is agnostic to *where* the states are — only the query
/// region resolution (which states fall inside a spatial region) and data
/// generators need the embedding. Implementations: [`crate::grid::GridSpace`]
/// (the raster of Fig. 2), [`crate::line::LineSpace`] (the 1-D synthetic
/// domain of the evaluation) and [`crate::network::RoadNetwork`] (the road
/// datasets).
pub trait StateSpace {
    /// Number of states `|S|`.
    fn num_states(&self) -> usize;

    /// The planar location of state `id`.
    ///
    /// # Panics
    /// Implementations may panic when `id ≥ num_states()`.
    fn location(&self, id: usize) -> Point2;

    /// The state whose location is nearest to `p` (ties broken arbitrarily),
    /// or `None` for an empty space.
    fn nearest_state(&self, p: &Point2) -> Option<usize> {
        (0..self.num_states()).min_by(|&a, &b| {
            self.location(a).distance_sq(p).total_cmp(&self.location(b).distance_sq(p))
        })
    }

    /// All states whose location lies inside `rect` (ascending ids).
    ///
    /// The default implementation scans every state; spatially indexed
    /// implementations override this.
    fn states_in_rect(&self, rect: &Rect) -> Vec<usize> {
        (0..self.num_states()).filter(|&id| rect.contains(&self.location(id))).collect()
    }

    /// The bounding box of all state locations.
    fn bounding_box(&self) -> Rect {
        let mut bounds = Rect::empty();
        for id in 0..self.num_states() {
            bounds = bounds.union(&Rect::point(self.location(id)));
        }
        bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal in-memory state space for testing the trait defaults.
    struct Points(Vec<Point2>);

    impl StateSpace for Points {
        fn num_states(&self) -> usize {
            self.0.len()
        }
        fn location(&self, id: usize) -> Point2 {
            self.0[id]
        }
    }

    #[test]
    fn default_nearest_state() {
        let s = Points(vec![Point2::new(0.0, 0.0), Point2::new(5.0, 0.0), Point2::new(0.0, 5.0)]);
        assert_eq!(s.nearest_state(&Point2::new(4.0, 1.0)), Some(1));
        assert_eq!(s.nearest_state(&Point2::new(0.1, 0.1)), Some(0));
        assert_eq!(Points(vec![]).nearest_state(&Point2::origin()), None);
    }

    #[test]
    fn default_states_in_rect() {
        let s = Points(vec![Point2::new(0.0, 0.0), Point2::new(5.0, 0.0), Point2::new(0.0, 5.0)]);
        let hits = s.states_in_rect(&Rect::from_bounds(-1.0, -1.0, 1.0, 6.0));
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn default_bounding_box() {
        let s = Points(vec![Point2::new(-1.0, 2.0), Point2::new(3.0, -4.0)]);
        assert_eq!(s.bounding_box(), Rect::from_bounds(-1.0, -4.0, 3.0, 2.0));
        assert!(Points(vec![]).bounding_box().is_empty());
    }
}
