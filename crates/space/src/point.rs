//! 2-D points in the continuous embedding space.
//!
//! The paper's state space `S ⊆ R^d` is a finite set of locations; we embed
//! states in the plane (`d = 2` covers both the raster of Fig. 2 and road
//! networks; the 1-D synthetic generator uses `y = 0`).

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// The origin `(0, 0)`.
    pub const fn origin() -> Self {
        Point2 { x: 0.0, y: 0.0 }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point2) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root in comparisons).
    pub fn distance_sq(&self, other: &Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Manhattan (L1) distance.
    pub fn manhattan(&self, other: &Point2) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Component-wise midpoint.
    pub fn midpoint(&self, other: &Point2) -> Point2 {
        Point2::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Translates by `(dx, dy)`.
    pub fn translate(&self, dx: f64, dy: f64) -> Point2 {
        Point2::new(self.x + dx, self.y + dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(a.manhattan(&b), 7.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn midpoint_and_translate() {
        let a = Point2::new(1.0, 1.0);
        let b = Point2::new(3.0, 5.0);
        assert_eq!(a.midpoint(&b), Point2::new(2.0, 3.0));
        assert_eq!(a.translate(1.0, -1.0), Point2::new(2.0, 0.0));
        assert_eq!(Point2::origin(), Point2::new(0.0, 0.0));
    }
}
