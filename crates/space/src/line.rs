//! The 1-D state space used by the paper's synthetic data generator.
//!
//! The evaluation's synthetic datasets index states linearly and constrain
//! transitions to the band `[s_i − max_step/2, s_i + max_step/2]`. States
//! are embedded on the x-axis at unit spacing.

use crate::point::Point2;
use crate::rect::Rect;
use crate::state_space::StateSpace;

/// `n` states on a line, state `i` located at `(i, 0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineSpace {
    n: usize,
}

impl LineSpace {
    /// Creates a line of `n` states.
    pub fn new(n: usize) -> Self {
        LineSpace { n }
    }

    /// The inclusive index range `[lo, hi]` clipped to the space, matching
    /// the paper's query windows like "states [100, 120]".
    pub fn states_in_range(&self, lo: usize, hi: usize) -> Vec<usize> {
        if self.n == 0 || lo > hi || lo >= self.n {
            return Vec::new();
        }
        (lo..=hi.min(self.n - 1)).collect()
    }

    /// The band of states reachable from `i` in one step under the paper's
    /// `max_step` locality rule (`[i − max_step/2, i + max_step/2]`).
    pub fn step_band(&self, i: usize, max_step: usize) -> (usize, usize) {
        let half = max_step / 2;
        (i.saturating_sub(half), (i + half).min(self.n.saturating_sub(1)))
    }
}

impl StateSpace for LineSpace {
    fn num_states(&self) -> usize {
        self.n
    }

    fn location(&self, id: usize) -> Point2 {
        assert!(id < self.n, "state id {id} out of range for LineSpace({})", self.n);
        Point2::new(id as f64, 0.0)
    }

    fn nearest_state(&self, p: &Point2) -> Option<usize> {
        if self.n == 0 {
            None
        } else {
            Some(p.x.round().clamp(0.0, (self.n - 1) as f64) as usize)
        }
    }

    fn states_in_rect(&self, rect: &Rect) -> Vec<usize> {
        if self.n == 0 || rect.is_empty() || rect.min.y > 0.0 || rect.max.y < 0.0 {
            return Vec::new();
        }
        let lo = rect.min.x.ceil().max(0.0);
        let hi = rect.max.x.floor().min((self.n - 1) as f64);
        if lo > hi {
            return Vec::new();
        }
        (lo as usize..=hi as usize).collect()
    }

    fn bounding_box(&self) -> Rect {
        if self.n == 0 {
            Rect::empty()
        } else {
            Rect::from_bounds(0.0, 0.0, (self.n - 1) as f64, 0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_geometry() {
        let l = LineSpace::new(5);
        assert_eq!(l.num_states(), 5);
        assert_eq!(l.location(3), Point2::new(3.0, 0.0));
        assert_eq!(l.nearest_state(&Point2::new(2.4, 9.0)), Some(2));
        assert_eq!(l.nearest_state(&Point2::new(-3.0, 0.0)), Some(0));
        assert_eq!(LineSpace::new(0).nearest_state(&Point2::origin()), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn location_bounds_checked() {
        LineSpace::new(2).location(2);
    }

    #[test]
    fn ranges_clip() {
        let l = LineSpace::new(10);
        assert_eq!(l.states_in_range(3, 5), vec![3, 4, 5]);
        assert_eq!(l.states_in_range(8, 20), vec![8, 9]);
        assert!(l.states_in_range(12, 20).is_empty());
        assert!(l.states_in_range(5, 3).is_empty());
        assert!(LineSpace::new(0).states_in_range(0, 3).is_empty());
    }

    #[test]
    fn step_band_respects_max_step() {
        let l = LineSpace::new(100);
        assert_eq!(l.step_band(50, 40), (30, 70));
        assert_eq!(l.step_band(5, 40), (0, 25));
        assert_eq!(l.step_band(95, 40), (75, 99));
        assert_eq!(l.step_band(0, 1), (0, 0));
    }

    #[test]
    fn states_in_rect_respects_y() {
        let l = LineSpace::new(10);
        assert_eq!(l.states_in_rect(&Rect::from_bounds(1.2, -1.0, 3.8, 1.0)), vec![2, 3]);
        assert!(l.states_in_rect(&Rect::from_bounds(0.0, 1.0, 9.0, 2.0)).is_empty());
        assert!(l.states_in_rect(&Rect::from_bounds(20.0, 0.0, 30.0, 0.0)).is_empty());
    }

    #[test]
    fn bounding_box() {
        assert_eq!(LineSpace::new(4).bounding_box(), Rect::from_bounds(0.0, 0.0, 3.0, 0.0));
        assert!(LineSpace::new(0).bounding_box().is_empty());
    }
}
