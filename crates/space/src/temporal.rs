//! Discrete time sets — the `T▫` component of a query window.
//!
//! The paper notes that query times need not be contiguous ("a set of not
//! necessarily subsequent points in time"); [`TimeSet`] therefore stores an
//! arbitrary sorted set of timestamps while providing the common
//! interval constructor.

use std::fmt;

/// A finite, sorted, duplicate-free set of discrete timestamps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSet {
    times: Vec<u32>,
}

impl TimeSet {
    /// Builds from arbitrary timestamps (sorted and deduplicated).
    pub fn new<I: IntoIterator<Item = u32>>(times: I) -> Self {
        let mut times: Vec<u32> = times.into_iter().collect();
        times.sort_unstable();
        times.dedup();
        TimeSet { times }
    }

    /// The contiguous interval `[start, end]` (inclusive on both ends).
    pub fn interval(start: u32, end: u32) -> Self {
        if start > end {
            return TimeSet { times: Vec::new() };
        }
        TimeSet { times: (start..=end).collect() }
    }

    /// The singleton `{t}`.
    pub fn at(t: u32) -> Self {
        TimeSet { times: vec![t] }
    }

    /// The empty set.
    pub fn empty() -> Self {
        TimeSet { times: Vec::new() }
    }

    /// Number of timestamps `|T▫|`.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no timestamp is contained.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, t: u32) -> bool {
        self.times.binary_search(&t).is_ok()
    }

    /// Earliest timestamp, if any.
    pub fn min(&self) -> Option<u32> {
        self.times.first().copied()
    }

    /// Latest timestamp `t_end = max(T▫)`, the anchor of the query-based
    /// backward pass.
    pub fn max(&self) -> Option<u32> {
        self.times.last().copied()
    }

    /// Iterates timestamps in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.times.iter().copied()
    }

    /// The underlying sorted slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.times
    }

    /// Shifts every timestamp by `delta` (used to re-anchor workloads).
    pub fn shift(&self, delta: u32) -> TimeSet {
        TimeSet { times: self.times.iter().map(|t| t + delta).collect() }
    }

    /// Set union.
    pub fn union(&self, other: &TimeSet) -> TimeSet {
        TimeSet::new(self.iter().chain(other.iter()))
    }
}

/// A static index over closed integer intervals `[start, end]`.
///
/// Backs the temporal half of the planner's spatio-temporal prefilter: each
/// uncertain object contributes the span of timestamps it can occupy (its
/// observation span, right-extended to `u32::MAX` when the motion model
/// extrapolates past the last observation). Intervals are stored sorted by
/// start, so stabbing/overlap queries resolve with one binary search plus a
/// scan of the candidate prefix, and the largest start — the guard the
/// planner checks before skipping per-object window validation — is O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalIndex {
    /// `(start, end, id)` sorted by `start`, then `id`; `start <= end`.
    spans: Vec<(u32, u32, usize)>,
    /// Largest `end` over all spans (0 when empty).
    max_end: u32,
}

impl IntervalIndex {
    /// Builds the index from `(start, end)` spans; the id of a span is its
    /// position in the input. Swapped endpoints are normalised.
    pub fn build<I: IntoIterator<Item = (u32, u32)>>(spans: I) -> Self {
        let mut spans: Vec<(u32, u32, usize)> =
            spans.into_iter().enumerate().map(|(id, (a, b))| (a.min(b), a.max(b), id)).collect();
        spans.sort_unstable();
        let max_end = spans.iter().map(|&(_, end, _)| end).max().unwrap_or(0);
        IntervalIndex { spans, max_end }
    }

    /// Number of indexed spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no span is indexed.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Largest span start, if any — the O(1) guard for "every span has
    /// begun by time `t`".
    pub fn max_start(&self) -> Option<u32> {
        self.spans.last().map(|&(start, _, _)| start)
    }

    /// Smallest span start, if any.
    pub fn min_start(&self) -> Option<u32> {
        self.spans.first().map(|&(start, _, _)| start)
    }

    /// Largest span end, if any.
    pub fn max_end(&self) -> Option<u32> {
        (!self.spans.is_empty()).then_some(self.max_end)
    }

    /// Ids of all spans overlapping the closed window `[lo, hi]`, in
    /// ascending id order. `lo > hi` yields the empty set.
    pub fn overlapping(&self, lo: u32, hi: u32) -> Vec<usize> {
        if lo > hi || self.spans.is_empty() {
            return Vec::new();
        }
        // Spans are sorted by start: everything past the first start > hi
        // cannot overlap, so only the prefix needs the end >= lo test.
        let cut = self.spans.partition_point(|&(start, _, _)| start <= hi);
        let mut out: Vec<usize> = self.spans[..cut]
            .iter()
            .filter(|&&(_, end, _)| end >= lo)
            .map(|&(_, _, id)| id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of spans whose start is `<= t` (binary search).
    pub fn count_started_by(&self, t: u32) -> usize {
        self.spans.partition_point(|&(start, _, _)| start <= t)
    }
}

impl fmt::Display for TimeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Contiguous sets print as intervals, others as explicit sets.
        match (self.min(), self.max()) {
            (Some(lo), Some(hi)) if (hi - lo) as usize + 1 == self.len() => {
                write!(f, "[{lo}, {hi}]")
            }
            _ => {
                write!(f, "{{")?;
                for (i, t) in self.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_construction() {
        let t = TimeSet::interval(20, 25);
        assert_eq!(t.len(), 6);
        assert_eq!(t.min(), Some(20));
        assert_eq!(t.max(), Some(25));
        assert!(t.contains(22));
        assert!(!t.contains(26));
        assert!(TimeSet::interval(5, 4).is_empty());
    }

    #[test]
    fn new_sorts_and_dedups() {
        let t = TimeSet::new([7, 3, 7, 5]);
        assert_eq!(t.as_slice(), &[3, 5, 7]);
        assert!(!t.contains(4));
    }

    #[test]
    fn singleton_and_empty() {
        assert_eq!(TimeSet::at(9).as_slice(), &[9]);
        assert!(TimeSet::empty().is_empty());
        assert_eq!(TimeSet::empty().max(), None);
        assert_eq!(TimeSet::empty().min(), None);
    }

    #[test]
    fn shift_translates_all() {
        let t = TimeSet::new([1, 4]).shift(10);
        assert_eq!(t.as_slice(), &[11, 14]);
    }

    #[test]
    fn union_merges() {
        let a = TimeSet::new([1, 3]);
        let b = TimeSet::new([2, 3, 4]);
        assert_eq!(a.union(&b).as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TimeSet::interval(2, 4).to_string(), "[2, 4]");
        assert_eq!(TimeSet::new([2, 5]).to_string(), "{2, 5}");
        assert_eq!(TimeSet::at(3).to_string(), "[3, 3]");
    }

    #[test]
    fn interval_index_overlap_matches_linear_scan() {
        let spans = [(0u32, 5u32), (3, 3), (7, 12), (10, u32::MAX), (2, 8)];
        let idx = IntervalIndex::build(spans);
        for (lo, hi) in [(0u32, 0u32), (4, 6), (6, 6), (9, 11), (13, 13), (5, 2)] {
            let expect: Vec<usize> = spans
                .iter()
                .enumerate()
                .filter(|(_, &(a, b))| lo <= hi && a <= hi && b >= lo)
                .map(|(id, _)| id)
                .collect();
            assert_eq!(idx.overlapping(lo, hi), expect, "window [{lo}, {hi}]");
        }
    }

    #[test]
    fn interval_index_extrema_and_counts() {
        let idx = IntervalIndex::build([(4u32, 2u32), (9, 9), (0, 1)]);
        // The swapped (4, 2) span is normalised to [2, 4].
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.min_start(), Some(0));
        assert_eq!(idx.max_start(), Some(9));
        assert_eq!(idx.max_end(), Some(9));
        assert_eq!(idx.count_started_by(1), 1);
        assert_eq!(idx.count_started_by(2), 2);
        assert_eq!(idx.count_started_by(9), 3);
        assert_eq!(idx.overlapping(3, 3), vec![0]);
    }

    #[test]
    fn interval_index_empty() {
        let idx = IntervalIndex::build(std::iter::empty());
        assert!(idx.is_empty());
        assert_eq!(idx.max_start(), None);
        assert_eq!(idx.max_end(), None);
        assert!(idx.overlapping(0, u32::MAX).is_empty());
        assert_eq!(idx.count_started_by(u32::MAX), 0);
    }
}
