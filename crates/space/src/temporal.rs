//! Discrete time sets — the `T▫` component of a query window.
//!
//! The paper notes that query times need not be contiguous ("a set of not
//! necessarily subsequent points in time"); [`TimeSet`] therefore stores an
//! arbitrary sorted set of timestamps while providing the common
//! interval constructor.

use std::fmt;

/// A finite, sorted, duplicate-free set of discrete timestamps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSet {
    times: Vec<u32>,
}

impl TimeSet {
    /// Builds from arbitrary timestamps (sorted and deduplicated).
    pub fn new<I: IntoIterator<Item = u32>>(times: I) -> Self {
        let mut times: Vec<u32> = times.into_iter().collect();
        times.sort_unstable();
        times.dedup();
        TimeSet { times }
    }

    /// The contiguous interval `[start, end]` (inclusive on both ends).
    pub fn interval(start: u32, end: u32) -> Self {
        if start > end {
            return TimeSet { times: Vec::new() };
        }
        TimeSet { times: (start..=end).collect() }
    }

    /// The singleton `{t}`.
    pub fn at(t: u32) -> Self {
        TimeSet { times: vec![t] }
    }

    /// The empty set.
    pub fn empty() -> Self {
        TimeSet { times: Vec::new() }
    }

    /// Number of timestamps `|T▫|`.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no timestamp is contained.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, t: u32) -> bool {
        self.times.binary_search(&t).is_ok()
    }

    /// Earliest timestamp, if any.
    pub fn min(&self) -> Option<u32> {
        self.times.first().copied()
    }

    /// Latest timestamp `t_end = max(T▫)`, the anchor of the query-based
    /// backward pass.
    pub fn max(&self) -> Option<u32> {
        self.times.last().copied()
    }

    /// Iterates timestamps in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.times.iter().copied()
    }

    /// The underlying sorted slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.times
    }

    /// Shifts every timestamp by `delta` (used to re-anchor workloads).
    pub fn shift(&self, delta: u32) -> TimeSet {
        TimeSet { times: self.times.iter().map(|t| t + delta).collect() }
    }

    /// Set union.
    pub fn union(&self, other: &TimeSet) -> TimeSet {
        TimeSet::new(self.iter().chain(other.iter()))
    }
}

impl fmt::Display for TimeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Contiguous sets print as intervals, others as explicit sets.
        match (self.min(), self.max()) {
            (Some(lo), Some(hi)) if (hi - lo) as usize + 1 == self.len() => {
                write!(f, "[{lo}, {hi}]")
            }
            _ => {
                write!(f, "{{")?;
                for (i, t) in self.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_construction() {
        let t = TimeSet::interval(20, 25);
        assert_eq!(t.len(), 6);
        assert_eq!(t.min(), Some(20));
        assert_eq!(t.max(), Some(25));
        assert!(t.contains(22));
        assert!(!t.contains(26));
        assert!(TimeSet::interval(5, 4).is_empty());
    }

    #[test]
    fn new_sorts_and_dedups() {
        let t = TimeSet::new([7, 3, 7, 5]);
        assert_eq!(t.as_slice(), &[3, 5, 7]);
        assert!(!t.contains(4));
    }

    #[test]
    fn singleton_and_empty() {
        assert_eq!(TimeSet::at(9).as_slice(), &[9]);
        assert!(TimeSet::empty().is_empty());
        assert_eq!(TimeSet::empty().max(), None);
        assert_eq!(TimeSet::empty().min(), None);
    }

    #[test]
    fn shift_translates_all() {
        let t = TimeSet::new([1, 4]).shift(10);
        assert_eq!(t.as_slice(), &[11, 14]);
    }

    #[test]
    fn union_merges() {
        let a = TimeSet::new([1, 3]);
        let b = TimeSet::new([2, 3, 4]);
        assert_eq!(a.union(&b).as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TimeSet::interval(2, 4).to_string(), "[2, 4]");
        assert_eq!(TimeSet::new([2, 5]).to_string(), "{2, 5}");
        assert_eq!(TimeSet::at(3).to_string(), "[3, 3]");
    }
}
