//! Property-based tests of the spatial substrate: R-tree vs linear scan,
//! grid geometry, region resolution and road-network generation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ust_space::network_gen::{self, NetworkConfig};
use ust_space::{GridSpace, LineSpace, Point2, RTree, RTreeEntry, Rect, Region, StateSpace};

fn random_points(seed: u64, n: usize, extent: f64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point2::new(rng.random::<f64>() * extent, rng.random::<f64>() * extent))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rtree_rect_query_equals_linear_scan(
        seed in 0u64..5_000,
        n in 0usize..400,
        (x0, y0) in (0.0f64..90.0, 0.0f64..90.0),
        (w, h) in (0.0f64..50.0, 0.0f64..50.0),
    ) {
        let points = random_points(seed, n, 100.0);
        let tree = RTree::bulk_load(
            points.iter().enumerate().map(|(id, &point)| RTreeEntry { point, id }).collect(),
        );
        let rect = Rect::from_bounds(x0, y0, x0 + w, y0 + h);
        let mut got = tree.query_rect(&rect);
        got.sort_unstable();
        let expected: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| rect.contains(p))
            .map(|(id, _)| id)
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn rtree_nearest_equals_linear_scan(
        seed in 0u64..5_000,
        n in 1usize..300,
        qx in -20.0f64..120.0,
        qy in -20.0f64..120.0,
    ) {
        let points = random_points(seed, n, 100.0);
        let tree = RTree::bulk_load(
            points.iter().enumerate().map(|(id, &point)| RTreeEntry { point, id }).collect(),
        );
        let q = Point2::new(qx, qy);
        let got = tree.nearest(&q).unwrap();
        let best = points
            .iter()
            .map(|p| p.distance(&q))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((got.point.distance(&q) - best).abs() < 1e-9);
    }

    #[test]
    fn rtree_bulk_build_visits_every_entry_exactly_once(
        seed in 0u64..5_000,
        n in 0usize..500,
    ) {
        let points = random_points(seed, n, 100.0);
        let tree = RTree::bulk_load(
            points.iter().enumerate().map(|(id, &point)| RTreeEntry { point, id }).collect(),
        );
        prop_assert_eq!(tree.len(), n);
        prop_assert_eq!(tree.is_empty(), n == 0);
        // A universe rectangle visits each bulk-loaded entry exactly once.
        let mut ids = Vec::new();
        tree.visit_rect(&Rect::from_bounds(-1e9, -1e9, 1e9, 1e9), &mut |e| ids.push(e.id));
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn rtree_duplicates_and_zero_area_rects_match_scan(
        seed in 0u64..5_000,
        n in 1usize..300,
        (qx, qy) in (0u8..5, 0u8..5),
    ) {
        // A 5×5 lattice forces heavy point duplication; the query is a
        // zero-area rectangle pinned to one lattice site.
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<Point2> = (0..n)
            .map(|_| {
                Point2::new(rng.random_range(0..5) as f64, rng.random_range(0..5) as f64)
            })
            .collect();
        let tree = RTree::bulk_load(
            points.iter().enumerate().map(|(id, &point)| RTreeEntry { point, id }).collect(),
        );
        let q = Point2::new(qx as f64, qy as f64);
        let mut got = tree.query_rect(&Rect::point(q));
        got.sort_unstable();
        let expected: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.x == q.x && p.y == q.y)
            .map(|(id, _)| id)
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn rtree_visit_leaves_covers_visit_rect(
        seed in 0u64..5_000,
        n in 0usize..400,
        (x0, y0) in (0.0f64..90.0, 0.0f64..90.0),
        (w, h) in (0.0f64..50.0, 0.0f64..50.0),
    ) {
        let points = random_points(seed, n, 100.0);
        let tree = RTree::bulk_load(
            points.iter().enumerate().map(|(id, &point)| RTreeEntry { point, id }).collect(),
        );
        let rect = Rect::from_bounds(x0, y0, x0 + w, y0 + h);
        // Leaf-granular visiting hands over boxes that intersect the rect
        // and entries that (after filtering) reproduce visit_rect exactly.
        let mut leaves: Vec<(Rect, Vec<RTreeEntry>)> = Vec::new();
        tree.visit_leaves(&rect, &mut |bbox, entries| leaves.push((*bbox, entries.to_vec())));
        let mut filtered = Vec::new();
        for (bbox, entries) in &leaves {
            prop_assert!(rect.intersects(bbox));
            for e in entries {
                // Every leaf entry lies in its own box, and the box bounds
                // the distance of all its entries to any rectangle.
                prop_assert!(bbox.contains(&e.point));
                prop_assert!(
                    rect.distance_to_point(&e.point) <= rect.max_distance_to_rect(bbox) + 1e-9
                );
                if rect.contains(&e.point) {
                    filtered.push(e.id);
                }
            }
        }
        filtered.sort_unstable();
        let mut direct = tree.query_rect(&rect);
        direct.sort_unstable();
        prop_assert_eq!(filtered, direct);
    }

    #[test]
    fn grid_cell_id_roundtrip(rows in 1usize..40, cols in 1usize..40) {
        let g = GridSpace::new(rows, cols);
        for id in 0..g.num_states() {
            let (r, c) = g.id_to_cell(id).unwrap();
            prop_assert_eq!(g.cell_to_id(r, c), Some(id));
            // The nearest state to a cell's center is the cell itself.
            prop_assert_eq!(g.nearest_state(&g.location(id)), Some(id));
        }
    }

    #[test]
    fn grid_rect_resolution_equals_scan(
        rows in 1usize..20,
        cols in 1usize..20,
        (x0, y0) in (-2.0f64..22.0, -2.0f64..22.0),
        (w, h) in (0.0f64..15.0, 0.0f64..15.0),
    ) {
        let g = GridSpace::new(rows, cols);
        let rect = Rect::from_bounds(x0, y0, x0 + w, y0 + h);
        let fast = g.states_in_rect(&rect);
        let slow: Vec<usize> = (0..g.num_states())
            .filter(|&id| rect.contains(&g.location(id)))
            .collect();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn region_union_is_set_union(
        n in 1usize..100,
        a_lo in 0usize..50, a_len in 0usize..30,
        b_lo in 0usize..70, b_len in 0usize..40,
    ) {
        let space = LineSpace::new(n);
        let a: Vec<usize> = (a_lo..(a_lo + a_len).min(n)).collect();
        let b: Vec<usize> = (b_lo..(b_lo + b_len).min(n)).collect();
        let union = Region::Union(vec![
            Region::StateIds(a.clone()),
            Region::StateIds(b.clone()),
        ]);
        let mut expected: Vec<usize> = a.iter().chain(b.iter())
            .copied().filter(|&s| s < n).collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(union.resolve(&space), expected);
    }

    #[test]
    fn circle_region_is_subset_of_bounding_rect_region(
        rows in 2usize..15, cols in 2usize..15,
        cx in 0.0f64..15.0, cy in 0.0f64..15.0, r in 0.0f64..8.0,
    ) {
        let g = GridSpace::new(rows, cols);
        let circle = Region::circle(Point2::new(cx, cy), r);
        let bbox = Region::Rect(circle.bounding_rect().unwrap());
        let circle_states = circle.resolve(&g);
        let bbox_states = bbox.resolve(&g);
        for s in &circle_states {
            prop_assert!(bbox_states.contains(s));
            prop_assert!(g.location(*s).distance(&Point2::new(cx, cy)) <= r + 1e-9);
        }
    }

    #[test]
    fn rect_geometry_laws(
        (ax, ay, aw, ah) in (0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0),
        (bx, by, bw, bh) in (0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0),
    ) {
        let a = Rect::from_bounds(ax, ay, ax + aw, ay + ah);
        let b = Rect::from_bounds(bx, by, bx + bw, by + bh);
        // Symmetry.
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        // Union contains both.
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a) && u.contains_rect(&b));
        // Containment implies intersection.
        if a.contains_rect(&b) {
            prop_assert!(a.intersects(&b));
        }
        // Distance zero iff the center is inside (for the center point).
        prop_assert_eq!(a.distance_to_point(&a.center()) == 0.0, a.contains(&a.center()));
    }

    #[test]
    fn generated_networks_are_connected_with_exact_counts(
        seed in 0u64..200,
        nodes in 2usize..400,
        extra in 0usize..200,
    ) {
        let edges = (nodes - 1) + extra;
        let g = network_gen::generate(&NetworkConfig {
            num_nodes: nodes,
            num_edges: edges,
            extent: 100.0,
            seed,
        });
        prop_assert_eq!(g.num_nodes(), nodes);
        prop_assert!(g.is_connected());
        // Edge target met unless the neighborhood saturated (dense graphs).
        prop_assert!(g.num_edges() >= nodes - 1);
        prop_assert!(g.num_edges() <= edges);
        // No self-loops, no duplicate arcs.
        for u in 0..nodes {
            let nb = g.neighbors(u);
            for w in nb.windows(2) {
                prop_assert!(w[0] < w[1], "adjacency must be sorted and unique");
            }
            prop_assert!(!nb.contains(&(u as u32)));
        }
    }
}

#[test]
fn network_state_space_queries_match_scan() {
    let g = network_gen::generate(&NetworkConfig {
        num_nodes: 500,
        num_edges: 640,
        extent: 100.0,
        seed: 77,
    });
    let rect = Rect::from_bounds(20.0, 20.0, 60.0, 55.0);
    let fast = g.states_in_rect(&rect);
    let slow: Vec<usize> =
        (0..g.num_states()).filter(|&id| rect.contains(&g.location(id))).collect();
    assert_eq!(fast, slow);
    let q = Point2::new(33.3, 44.4);
    let nearest = g.nearest_state(&q).unwrap();
    let best = (0..g.num_states())
        .min_by(|&a, &b| g.location(a).distance_sq(&q).total_cmp(&g.location(b).distance_sq(&q)))
        .unwrap();
    assert!((g.location(nearest).distance(&q) - g.location(best).distance(&q)).abs() < 1e-9);
}

#[test]
fn rtree_degenerate_inputs() {
    // Empty tree: every query answers empty, nothing panics.
    let empty = RTree::bulk_load(Vec::new());
    assert!(empty.is_empty());
    assert_eq!(empty.height(), 0);
    assert!(empty.query_rect(&Rect::from_bounds(0.0, 0.0, 10.0, 10.0)).is_empty());
    assert!(empty.query_radius(&Point2::new(0.0, 0.0), 5.0).is_empty());
    assert!(empty.nearest(&Point2::new(0.0, 0.0)).is_none());

    // 100 identical points: all land in one leaf pile, all are found by a
    // zero-area rectangle on the point, none by one a hair away.
    let p = Point2::new(5.0, 5.0);
    let dupes = RTree::bulk_load((0..100).map(|id| RTreeEntry { point: p, id }).collect());
    assert_eq!(dupes.len(), 100);
    let mut got = dupes.query_rect(&Rect::point(p));
    got.sort_unstable();
    assert_eq!(got, (0..100).collect::<Vec<_>>());
    assert!(dupes.query_rect(&Rect::point(Point2::new(5.0 + 1e-9, 5.0))).is_empty());
    assert_eq!(dupes.nearest(&Point2::new(7.0, 5.0)).unwrap().point, p);
}
