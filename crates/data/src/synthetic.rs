//! The paper's synthetic dataset generator (Table I).
//!
//! Reproduces the construction of Section VIII-A: `|S|` states indexed
//! linearly; from each state exactly `state_spread` successor states are
//! reachable, all within the locality band `[s_i − max_step/2,
//! s_i + max_step/2]`; transition probabilities are random and row-
//! normalized. Each of the `|D|` objects starts at time 0 with a PDF over
//! `object_spread` states (a contiguous run around a random center — the
//! paper only fixes the *number* of start states, which is what the
//! parameter controls).
//!
//! | parameter | range (paper) | default (paper) |
//! |---|---|---|
//! | `num_objects` (`\|D\|`) | 1,000 – 100,000 | 10,000 |
//! | `num_states` (`\|S\|`) | 2,000 – 100,000 | 100,000 |
//! | `object_spread` | 5 | 5 |
//! | `state_spread` | 1 – 20 | 5 |
//! | `max_step` | 10 – 100 | 40 |

// lint: allow-file(panicking-call-in-lib) — synthetic dataset generator:
// successor states are sampled from `0..n`, so every `expect` guards an
// invariant the generator itself establishes; a failure is a bug in this
// file, not recoverable caller input.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ust_core::{Observation, TrajectoryDatabase, UncertainObject};
use ust_markov::{CooBuilder, MarkovChain, SparseVector};
use ust_space::LineSpace;

/// Parameters of the synthetic generator (Table I of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticConfig {
    /// Number of uncertain objects `|D|`.
    pub num_objects: usize,
    /// Number of states `|S|`.
    pub num_states: usize,
    /// Number of possible start states per object.
    pub object_spread: usize,
    /// Number of successor states per state.
    pub state_spread: usize,
    /// Width of the locality band reachable in one transition.
    pub max_step: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            num_objects: 10_000,
            num_states: 100_000,
            object_spread: 5,
            state_spread: 5,
            max_step: 40,
            seed: 0xDA7A,
        }
    }
}

impl SyntheticConfig {
    /// A small configuration for unit tests and examples.
    pub fn small() -> Self {
        SyntheticConfig {
            num_objects: 100,
            num_states: 1_000,
            object_spread: 5,
            state_spread: 5,
            max_step: 40,
            seed: 0xDA7A,
        }
    }
}

/// A generated synthetic dataset: the database plus its 1-D embedding.
#[derive(Debug)]
pub struct SyntheticDataset {
    /// The uncertain-trajectory database (shared chain + objects).
    pub db: TrajectoryDatabase,
    /// The 1-D state space the states live in.
    pub space: LineSpace,
    /// The generating configuration.
    pub config: SyntheticConfig,
}

/// Builds the banded random transition matrix of the synthetic model.
pub fn synthetic_chain(config: &SyntheticConfig, rng: &mut StdRng) -> MarkovChain {
    let n = config.num_states;
    let half = (config.max_step / 2).max(1);
    let mut builder = CooBuilder::with_capacity(n, n, n * config.state_spread);
    let mut weights: Vec<f64> = Vec::with_capacity(config.state_spread);
    let mut successors: Vec<usize> = Vec::with_capacity(config.state_spread);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half).min(n - 1);
        let band = hi - lo + 1;
        let k = config.state_spread.clamp(1, band);
        successors.clear();
        while successors.len() < k {
            let c = lo + rng.random_range(0..band);
            if !successors.contains(&c) {
                successors.push(c);
            }
        }
        weights.clear();
        let mut total = 0.0;
        for _ in 0..k {
            let w: f64 = rng.random::<f64>() + 1e-3;
            weights.push(w);
            total += w;
        }
        for (&c, &w) in successors.iter().zip(&weights) {
            builder.push(i, c, w / total).expect("successors lie within the state space");
        }
    }
    MarkovChain::from_csr(builder.build()).expect("rows are normalized by construction")
}

/// Draws one object's initial PDF: a contiguous run of `object_spread`
/// states around a random center, with random normalized weights.
pub fn synthetic_object(id: u64, config: &SyntheticConfig, rng: &mut StdRng) -> UncertainObject {
    let n = config.num_states;
    let spread = config.object_spread.clamp(1, n);
    let start = rng.random_range(0..=(n - spread));
    let mut pairs = Vec::with_capacity(spread);
    for offset in 0..spread {
        pairs.push((start + offset, rng.random::<f64>() + 1e-3));
    }
    let dist = SparseVector::from_pairs(n, pairs).expect("states in range");
    UncertainObject::with_single_observation(
        id,
        Observation::uncertain(0, dist).expect("positive weights"),
    )
}

/// Generates the complete dataset for `config`.
pub fn generate(config: &SyntheticConfig) -> SyntheticDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let chain = synthetic_chain(config, &mut rng);
    let mut db = TrajectoryDatabase::new(chain);
    for id in 0..config.num_objects {
        db.insert(synthetic_object(id as u64, config, &mut rng))
            .expect("generated objects are valid");
    }
    SyntheticDataset { db, space: LineSpace::new(config.num_states), config: *config }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ust_space::StateSpace;

    #[test]
    fn defaults_match_table_1() {
        let c = SyntheticConfig::default();
        assert_eq!(c.num_objects, 10_000);
        assert_eq!(c.num_states, 100_000);
        assert_eq!(c.object_spread, 5);
        assert_eq!(c.state_spread, 5);
        assert_eq!(c.max_step, 40);
    }

    #[test]
    fn generated_chain_respects_band_and_spread() {
        let config = SyntheticConfig { num_states: 500, ..SyntheticConfig::small() };
        let mut rng = StdRng::seed_from_u64(1);
        let chain = synthetic_chain(&config, &mut rng);
        assert_eq!(chain.num_states(), 500);
        let half = (config.max_step / 2) as i64;
        for i in 0..500usize {
            let (cols, _) = chain.matrix().row(i);
            assert!(cols.len() <= config.state_spread);
            assert!(!cols.is_empty());
            for &c in cols {
                assert!((c as i64 - i as i64).abs() <= half, "state {i} reaches {c}");
            }
        }
    }

    #[test]
    fn objects_have_requested_spread() {
        let config = SyntheticConfig::small();
        let data = generate(&config);
        assert_eq!(data.db.len(), config.num_objects);
        for o in data.db.objects() {
            assert_eq!(o.initial_distribution().nnz(), config.object_spread);
            assert!((o.initial_distribution().sum() - 1.0).abs() < 1e-9);
            assert_eq!(o.anchor().time(), 0);
        }
        assert_eq!(data.space.num_states(), config.num_states);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = SyntheticConfig::small();
        let a = generate(&config);
        let b = generate(&config);
        assert!(a.db.models()[0].matrix().approx_eq(b.db.models()[0].matrix(), 0.0));
        assert_eq!(
            a.db.object(7).unwrap().initial_distribution(),
            b.db.object(7).unwrap().initial_distribution()
        );
        let c = generate(&SyntheticConfig { seed: 99, ..config });
        assert!(!a.db.models()[0].matrix().approx_eq(c.db.models()[0].matrix(), 1e-15));
    }

    #[test]
    fn degenerate_small_spaces_work() {
        let config = SyntheticConfig {
            num_objects: 3,
            num_states: 2,
            object_spread: 5, // clamped to 2
            state_spread: 10, // clamped to band
            max_step: 2,
            seed: 0,
        };
        let data = generate(&config);
        assert_eq!(data.db.len(), 3);
        for o in data.db.objects() {
            assert!(o.initial_distribution().nnz() <= 2);
        }
    }
}
