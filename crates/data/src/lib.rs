//! # ust-data — datasets, scenarios and workloads
//!
//! Generators for everything the ICDE 2012 evaluation runs on:
//!
//! * [`synthetic`] — the Table I synthetic generator (`|D|`, `|S|`,
//!   `object_spread`, `state_spread`, `max_step`);
//! * [`network_data`] — road-network chains ("transition matrix =
//!   adjacency matrix with random row-normalized weights") over the
//!   NA-like / Munich-like graphs from `ust_space::network_gen`;
//! * [`iceberg`] — the introduction's iceberg-drift scenario on a 2-D
//!   raster with a current-biased chain and sparse re-sightings;
//! * [`traffic`] — the road-traffic motivation (expected congestion
//!   queries, hotspot ranking);
//! * [`workload`] — query-window workloads, including the paper's default
//!   window (states `[100, 120]` × times `[20, 25]`);
//! * [`csv`] — the result-table writer used by the benchmark harness;
//! * [`io`] — plain-text persistence for chains and databases.

#![deny(missing_docs)]

pub mod csv;
pub mod iceberg;
pub mod index_workload;
pub mod io;
pub mod network_data;
pub mod streaming_feed;
pub mod synthetic;
pub mod traffic;
pub mod workload;

pub use csv::ResultTable;
pub use index_workload::{generate_index_workload, IndexWorkload, IndexWorkloadConfig};
pub use streaming_feed::{generate_streaming_feed, FeedConfig, FeedEvent, StreamingFeed};
pub use synthetic::{SyntheticConfig, SyntheticDataset};
