//! Query workload generators for the evaluation harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ust_core::{QueryWindow, Result};
use ust_space::TimeSet;

/// The paper's default query window: states `[100, 120]`, times `[20, 25]`
/// ("the query window is defined by the states [100, 120] and time
/// interval [20, 25]").
pub fn paper_default_window(num_states: usize) -> Result<QueryWindow> {
    QueryWindow::from_states(num_states, 100usize..=120, TimeSet::interval(20, 25))
}

/// Parameters for random rectangular windows over a linear state space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowWorkloadConfig {
    /// Number of windows to generate.
    pub count: usize,
    /// Total number of states.
    pub num_states: usize,
    /// Width of the state range per window (e.g. 21 for `[100, 120]`).
    pub state_width: usize,
    /// Earliest possible query start time.
    pub min_start: u32,
    /// Latest possible query start time.
    pub max_start: u32,
    /// Number of timestamps per window (e.g. 6 for `[20, 25]`).
    pub duration: u32,
    /// RNG seed.
    pub seed: u64,
}

/// Generates `count` random windows with the given shape.
pub fn random_windows(config: &WindowWorkloadConfig) -> Result<Vec<QueryWindow>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.count);
    let width = config.state_width.clamp(1, config.num_states);
    for _ in 0..config.count {
        let lo = rng.random_range(0..=(config.num_states - width));
        let start = if config.max_start > config.min_start {
            rng.random_range(config.min_start..=config.max_start)
        } else {
            config.min_start
        };
        let end = start + config.duration.saturating_sub(1);
        out.push(QueryWindow::from_states(
            config.num_states,
            lo..=(lo + width - 1),
            TimeSet::interval(start, end),
        )?);
    }
    Ok(out)
}

/// A window identical to `window` in space but re-anchored to start at
/// `start` with the same duration — used by the "query start time" sweeps
/// of Fig. 9.
pub fn with_start_time(window: &QueryWindow, start: u32) -> Result<QueryWindow> {
    let len = window.num_times() as u32;
    QueryWindow::new(
        window.states().clone(),
        TimeSet::interval(start, start + len.saturating_sub(1)),
    )
}

/// A window identical in space but spanning `[t_start, t_start + len − 1]`
/// with variable length — the "query window timeslot" sweeps of Fig. 10.
pub fn with_duration(window: &QueryWindow, len: u32) -> Result<QueryWindow> {
    let start = window.t_start();
    QueryWindow::new(
        window.states().clone(),
        TimeSet::interval(start, start + len.saturating_sub(1)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_window_shape() {
        let w = paper_default_window(100_000).unwrap();
        assert_eq!(w.states().count(), 21);
        assert!(w.states().contains(100));
        assert!(w.states().contains(120));
        assert!(!w.states().contains(99));
        assert_eq!(w.t_start(), 20);
        assert_eq!(w.t_end(), 25);
        assert!(paper_default_window(50).is_err(), "window must fit the space");
    }

    #[test]
    fn random_windows_have_requested_shape() {
        let config = WindowWorkloadConfig {
            count: 25,
            num_states: 5_000,
            state_width: 21,
            min_start: 5,
            max_start: 50,
            duration: 6,
            seed: 8,
        };
        let windows = random_windows(&config).unwrap();
        assert_eq!(windows.len(), 25);
        for w in &windows {
            assert_eq!(w.states().count(), 21);
            assert_eq!(w.num_times(), 6);
            assert!(w.t_start() >= 5 && w.t_start() <= 50);
        }
        // Determinism.
        let again = random_windows(&config).unwrap();
        assert_eq!(windows[3], again[3]);
    }

    #[test]
    fn start_time_and_duration_rewrites() {
        let w = paper_default_window(100_000).unwrap();
        let shifted = with_start_time(&w, 40).unwrap();
        assert_eq!(shifted.t_start(), 40);
        assert_eq!(shifted.t_end(), 45);
        assert_eq!(shifted.states(), w.states());
        let stretched = with_duration(&w, 10).unwrap();
        assert_eq!(stretched.t_start(), 20);
        assert_eq!(stretched.t_end(), 29);
        let single = with_duration(&w, 1).unwrap();
        assert_eq!(single.num_times(), 1);
    }
}
