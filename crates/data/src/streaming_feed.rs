//! Deterministic observation feeds for the streaming ingest path.
//!
//! A streaming benchmark needs the opposite shape of a batch workload: a
//! fixed object population plus a long, *localized* arrival sequence —
//! most fixes land on a small hot set of frequently reporting objects,
//! per-object timestamps mostly advance, and a tunable fraction arrives
//! out of order (the events
//! [`ust_core::TrajectoryDatabase::ingest`] classifies as
//! [`ust_core::IngestOutcome::IgnoredStale`]). This module generates that
//! feed deterministically per seed, so the incremental-≡-batch harness in
//! `tests/streaming.rs` and the `pr8_streaming` experiment replay
//! identical sequences.
//!
//! The motion model and placement reuse the clustered index workload
//! ([`crate::index_workload`]): the database a feed starts from is
//! exactly `generate_index_workload(&config.workload).db`.

// lint: allow-file(panicking-call-in-lib) — synthetic dataset generator:
// events target objects the same generator created, so every `expect` guards an
// invariant the generator itself establishes; a failure is a bug in this
// file, not recoverable caller input.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ust_core::{IngestOutcome, Observation, TrajectoryDatabase};
use ust_markov::SparseVector;
use ust_space::LineSpace;

use crate::index_workload::{generate_index_workload, IndexWorkloadConfig};

/// Parameters of a generated observation feed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedConfig {
    /// The population the feed reports on (database + motion model).
    pub workload: IndexWorkloadConfig,
    /// Number of observation events to emit.
    pub num_events: usize,
    /// Number of distinct objects that ever report — the "hot set",
    /// drawn from the front of the database. Localized updates are the
    /// streaming win: everything outside the hot set keeps its
    /// registration-time answer entry untouched.
    pub hot_objects: usize,
    /// Fraction of events emitted with a timestamp *behind* the object's
    /// previous fix — out-of-order arrivals the latest-fix policy must
    /// ignore.
    pub stale_fraction: f64,
    /// Largest timestamp step between an object's consecutive fixes.
    pub max_time_step: u32,
    /// Feed RNG seed (independent of the workload seed, so the same
    /// population can be replayed under different feeds).
    pub seed: u64,
}

impl Default for FeedConfig {
    fn default() -> Self {
        FeedConfig {
            workload: IndexWorkloadConfig::small(),
            num_events: 64,
            hot_objects: 8,
            stale_fraction: 0.15,
            max_time_step: 3,
            seed: 0xFEED,
        }
    }
}

/// One arrival: a fresh (possibly out-of-order) fix for one object.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedEvent {
    /// The reporting object.
    pub object_id: u64,
    /// The new fix.
    pub observation: Observation,
}

/// A generated feed: the seed database plus the arrival sequence.
#[derive(Debug)]
pub struct StreamingFeed {
    /// The database the feed starts from (every object at time 0).
    pub db: TrajectoryDatabase,
    /// The 1-D state space the states live in.
    pub space: LineSpace,
    /// The arrivals, in feed order.
    pub events: Vec<FeedEvent>,
    /// The generating configuration.
    pub config: FeedConfig,
}

impl StreamingFeed {
    /// The database state after applying the first `n` events of the feed
    /// to a fresh copy of the seed database — the batch-side reference the
    /// equivalence harness compares subscriptions against. Latest-fix
    /// ingest makes this a pure function of the prefix: stale events are
    /// ignored exactly as the streaming side ignored them.
    pub fn replay_prefix(&self, n: usize) -> TrajectoryDatabase {
        let mut db = self.db.clone();
        for event in &self.events[..n.min(self.events.len())] {
            db.ingest(event.object_id, event.observation.clone())
                .expect("feed events target existing objects with matching dimensions");
        }
        db
    }

    /// How many of the first `n` events the latest-fix policy applies
    /// (the rest are out-of-order and ignored).
    pub fn applied_in_prefix(&self, n: usize) -> usize {
        let mut db = self.db.clone();
        self.events[..n.min(self.events.len())]
            .iter()
            .filter(|e| {
                db.ingest(e.object_id, e.observation.clone()).expect("valid feed event")
                    == IngestOutcome::Applied
            })
            .count()
    }
}

/// Generates the feed for `config`: the clustered seed database plus
/// `num_events` hot-set arrivals, deterministically per seed.
pub fn generate_streaming_feed(config: &FeedConfig) -> StreamingFeed {
    let workload = generate_index_workload(&config.workload);
    let n = config.workload.num_states;
    let spread = config.workload.object_spread.clamp(1, n);
    let hot = config.hot_objects.clamp(1, config.workload.num_objects);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut last_time = vec![0u32; hot];
    let mut events = Vec::with_capacity(config.num_events);
    for _ in 0..config.num_events {
        let slot = rng.random_range(0..hot);
        let stale = last_time[slot] > 0 && rng.random::<f64>() < config.stale_fraction;
        let time = if stale {
            rng.random_range(0..last_time[slot])
        } else {
            let step = rng.random_range(1..=config.max_time_step.max(1));
            last_time[slot] += step;
            last_time[slot]
        };
        let start = rng.random_range(0..(n - spread + 1));
        let pairs: Vec<(usize, f64)> =
            (0..spread).map(|offset| (start + offset, rng.random::<f64>() + 1e-3)).collect();
        let dist = SparseVector::from_pairs(n, pairs).expect("states in range");
        events.push(FeedEvent {
            object_id: slot as u64,
            observation: Observation::uncertain(time, dist).expect("positive weights"),
        });
    }
    StreamingFeed { db: workload.db, space: workload.space, events, config: *config }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = FeedConfig::default();
        let a = generate_streaming_feed(&config);
        let b = generate_streaming_feed(&config);
        assert_eq!(a.events, b.events);
        let other = generate_streaming_feed(&FeedConfig { seed: 1, ..config });
        assert_ne!(a.events, other.events, "different seeds give different feeds");
    }

    #[test]
    fn feed_targets_the_hot_set_and_mixes_in_stale_events() {
        let config = FeedConfig { num_events: 200, ..FeedConfig::default() };
        let feed = generate_streaming_feed(&config);
        assert_eq!(feed.events.len(), 200);
        assert!(feed.events.iter().all(|e| (e.object_id as usize) < config.hot_objects));
        let applied = feed.applied_in_prefix(feed.events.len());
        assert!(applied < feed.events.len(), "some events are out-of-order");
        assert!(
            applied * 2 > feed.events.len(),
            "most events advance the clock ({applied}/200 applied)"
        );
    }

    #[test]
    fn replay_prefix_is_a_pure_function_of_the_prefix() {
        let feed = generate_streaming_feed(&FeedConfig::default());
        let half = feed.events.len() / 2;
        let a = feed.replay_prefix(half);
        let b = feed.replay_prefix(half);
        for idx in 0..a.len() {
            assert_eq!(
                a.object(idx).unwrap().anchor().distribution(),
                b.object(idx).unwrap().anchor().distribution()
            );
        }
        // The seed database itself is never mutated by replays.
        assert!(feed.db.objects().iter().all(|o| o.anchor().time() == 0));
    }
}
