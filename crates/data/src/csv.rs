//! Minimal result-table writer (CSV + Markdown).
//!
//! The benchmark harness records every regenerated figure as a small table;
//! a hand-rolled writer keeps the dependency budget at zero
//! while covering the only formats we need: RFC-4180-style CSV and GitHub
//! Markdown for the `paper_experiments` report.

use std::fmt::Write as _;
use std::path::Path;

/// An in-memory table with a fixed header row.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ResultTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Appends a row of preformatted cells.
    ///
    /// # Panics
    /// Panics when the cell count does not match the header count — a
    /// programming error in the harness, not a data error.
    pub fn push_row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} does not match header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Renders as CSV (quoting only where needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        write_csv_row(&mut out, &self.headers);
        for row in &self.rows {
            write_csv_row(&mut out, row);
        }
        out
    }

    /// Renders as a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ =
            writeln!(out, "|{}|", self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Writes the CSV rendering to `path`.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

fn write_csv_row(out: &mut String, cells: &[String]) {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if cell.contains([',', '"', '\n']) {
            out.push('"');
            out.push_str(&cell.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(cell);
        }
    }
    out.push('\n');
}

/// Formats a duration in seconds with engineering-friendly precision
/// (matches the log-scale runtime plots of the paper).
pub fn fmt_secs(seconds: f64) -> String {
    if seconds < 0.001 {
        format!("{:.1}µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{seconds:.3}s")
    }
}

/// Formats a probability with fixed precision.
pub fn fmt_prob(p: f64) -> String {
    format!("{p:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_simple() {
        let mut t = ResultTable::new(["a", "b"]);
        t.push_row(["1", "2"]);
        t.push_row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n\"x,y\",\"he said \"\"hi\"\"\"\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn markdown_rendering() {
        let mut t = ResultTable::new(["states", "QB (s)"]);
        t.push_row(["2000", "0.01"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| states | QB (s) |\n|---|---|\n"));
        assert!(md.contains("| 2000 | 0.01 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = ResultTable::new(["a"]);
        t.push_row(["1", "2"]);
    }

    #[test]
    fn write_csv_to_file() {
        let dir = std::env::temp_dir().join("ust_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        let mut t = ResultTable::new(["k"]);
        t.push_row(["v"]);
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "k\nv\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(0.0000005), "0.5µs");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(1.5), "1.500s");
        assert_eq!(fmt_prob(0.8640001), "0.864000");
    }
}
