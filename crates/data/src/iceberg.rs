//! The iceberg-monitoring scenario from the paper's introduction.
//!
//! The International Ice Patrol tracks icebergs drifting with the Labrador
//! Current near the Grand Banks; sightings are sparse and uncertain, and a
//! stochastic drift model infers positions between (and after)
//! observations. We model the ocean patch as a 2-D raster
//! ([`ust_space::GridSpace`]) and build a drift-biased Markov chain: each
//! cell transitions to its Moore neighborhood (and itself) with weights
//! favouring the prevailing current direction, plus isotropic turbulence.
//! Icebergs are observed with positional uncertainty (a cell neighborhood),
//! optionally re-sighted later — exercising the multiple-observation
//! machinery of Section VI.

// lint: allow-file(panicking-call-in-lib) — synthetic dataset generator:
// grid ids and neighbor cells come from iterating the grid itself, so every `expect` guards an
// invariant the generator itself establishes; a failure is a bug in this
// file, not recoverable caller input.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ust_core::{Observation, TrajectoryDatabase, UncertainObject};
use ust_markov::{CooBuilder, MarkovChain, SparseVector};
use ust_space::{GridSpace, StateSpace};

/// Configuration of the iceberg drift scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IcebergConfig {
    /// Grid rows (latitude bands).
    pub rows: usize,
    /// Grid columns (longitude bands).
    pub cols: usize,
    /// Number of tracked icebergs.
    pub num_icebergs: usize,
    /// Prevailing current as a `(d_col, d_row)` drift vector per step.
    pub current: (f64, f64),
    /// Isotropic turbulence strength (0 = deterministic drift).
    pub turbulence: f64,
    /// Probability that an iceberg has a second, later sighting.
    pub resight_probability: f64,
    /// Time of the optional second sighting.
    pub resight_time: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IcebergConfig {
    fn default() -> Self {
        IcebergConfig {
            rows: 40,
            cols: 40,
            num_icebergs: 200,
            current: (0.8, 0.4),
            turbulence: 0.5,
            resight_probability: 0.3,
            resight_time: 8,
            seed: 0x1CE,
        }
    }
}

/// A generated iceberg scenario.
#[derive(Debug)]
pub struct IcebergScenario {
    /// Database of icebergs over the drift chain.
    pub db: TrajectoryDatabase,
    /// The ocean raster.
    pub grid: GridSpace,
    /// The generating configuration.
    pub config: IcebergConfig,
}

/// Builds the drift-biased transition chain over the raster.
///
/// Each cell's successors are itself and its Moore neighborhood; the weight
/// of moving by `(dc, dr)` is `turbulence + max(0, ⟨(dc,dr), current⟩)`,
/// row-normalized — cells drift along the current but can loiter or wander.
/// Border cells simply lose their outside options (mass renormalizes), so
/// icebergs "beach" probabilistically at the domain edge.
pub fn drift_chain(grid: &GridSpace, current: (f64, f64), turbulence: f64) -> MarkovChain {
    let n = grid.num_states();
    let mut builder = CooBuilder::with_capacity(n, n, n * 9);
    for id in 0..n {
        let (r, c) = grid.id_to_cell(id).expect("id in range");
        let mut weights: Vec<(usize, f64)> = Vec::with_capacity(9);
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                let nr = r as i64 + dr;
                let nc = c as i64 + dc;
                if nr < 0 || nc < 0 {
                    continue;
                }
                let Some(nid) = grid.cell_to_id(nr as usize, nc as usize) else {
                    continue;
                };
                let along = dc as f64 * current.0 + dr as f64 * current.1;
                let w = turbulence.max(1e-6) + along.max(0.0);
                weights.push((nid, w));
            }
        }
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        for (nid, w) in weights {
            builder.push(id, nid, w / total).expect("neighbor ids in range");
        }
    }
    MarkovChain::from_csr(builder.build()).expect("rows normalized by construction")
}

/// Generates the scenario: chain, icebergs, observations.
pub fn generate(config: &IcebergConfig) -> IcebergScenario {
    let grid = GridSpace::new(config.rows, config.cols);
    let chain = drift_chain(&grid, config.current, config.turbulence);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = TrajectoryDatabase::new(chain);
    let n = grid.num_states();
    for id in 0..config.num_icebergs {
        // Initial sighting: a cell plus its 4-neighborhood (sighting from a
        // ship or aircraft carries positional uncertainty).
        let cell = rng.random_range(0..n);
        let mut pairs = vec![(cell, 2.0)];
        for nb in grid.neighbors4(cell) {
            pairs.push((nb, 1.0));
        }
        let first =
            Observation::uncertain(0, SparseVector::from_pairs(n, pairs).expect("cells in range"))
                .expect("positive weights");

        let mut observations = vec![first];
        if rng.random::<f64>() < config.resight_probability {
            // Re-sighting somewhere downstream of the current.
            let (r, c) = grid.id_to_cell(cell).expect("in range");
            let drift_cells = config.resight_time as f64;
            let nr = ((r as f64 + config.current.1 * drift_cells).round().max(0.0) as usize)
                .min(config.rows - 1);
            let nc = ((c as f64 + config.current.0 * drift_cells).round().max(0.0) as usize)
                .min(config.cols - 1);
            let resight_cell = grid.cell_to_id(nr, nc).expect("clamped to grid");
            let mut pairs = vec![(resight_cell, 2.0)];
            for nb in grid.neighbors8(resight_cell) {
                pairs.push((nb, 1.0));
            }
            observations.push(
                Observation::uncertain(
                    config.resight_time,
                    SparseVector::from_pairs(n, pairs).expect("cells in range"),
                )
                .expect("positive weights"),
            );
        }
        let iceberg = UncertainObject::new(id as u64, observations).expect("valid");
        db.insert(iceberg).expect("dimensions agree");
    }
    IcebergScenario { db, grid, config: *config }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_chain_is_biased_along_current() {
        let grid = GridSpace::new(10, 10);
        let chain = drift_chain(&grid, (1.0, 0.0), 0.1);
        // From an interior cell, moving east must be more likely than west.
        let id = grid.cell_to_id(5, 5).unwrap();
        let east = grid.cell_to_id(5, 6).unwrap();
        let west = grid.cell_to_id(5, 4).unwrap();
        assert!(chain.matrix().get(id, east) > chain.matrix().get(id, west));
        // All rows stochastic (validated by construction) and local.
        let (cols, _) = chain.matrix().row(id);
        assert_eq!(cols.len(), 9);
    }

    #[test]
    fn corner_cells_renormalize() {
        let grid = GridSpace::new(5, 5);
        let chain = drift_chain(&grid, (0.5, 0.5), 0.3);
        let corner = grid.cell_to_id(4, 4).unwrap();
        let (cols, vals) = chain.matrix().row(corner);
        assert_eq!(cols.len(), 4); // self + 3 in-grid neighbors
        assert!((vals.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scenario_has_single_and_multi_observation_icebergs() {
        let scenario = generate(&IcebergConfig {
            num_icebergs: 100,
            resight_probability: 0.5,
            ..IcebergConfig::default()
        });
        assert_eq!(scenario.db.len(), 100);
        let multi = scenario.db.objects().iter().filter(|o| o.has_multiple_observations()).count();
        assert!(multi > 10, "expected a healthy share of re-sighted icebergs, got {multi}");
        assert!(multi < 100);
        for o in scenario.db.objects() {
            assert!((o.initial_distribution().sum() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = IcebergConfig { num_icebergs: 20, ..IcebergConfig::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(
            a.db.object(5).unwrap().initial_distribution(),
            b.db.object(5).unwrap().initial_distribution()
        );
    }
}
