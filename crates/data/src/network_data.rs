//! Road-network datasets (the paper's "real data" experiments).
//!
//! The paper derives the transition matrix directly from the road graph:
//! "each node is treated as a state and each edge corresponds to two
//! non-zero entries in the transition matrix. The value of the non-zero
//! entries of one line in the matrix are set randomly and sum up to one."
//! This module does exactly that over any [`RoadNetwork`] (including the
//! NA-like and Munich-like synthetic substitutes from
//! `ust_space::network_gen`) and populates a database of objects anchored
//! at random nodes.

// lint: allow-file(panicking-call-in-lib) — synthetic dataset generator:
// node ids come from iterating the road-graph adjacency lists, so every `expect` guards an
// invariant the generator itself establishes; a failure is a bug in this
// file, not recoverable caller input.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ust_core::{Observation, TrajectoryDatabase, UncertainObject};
use ust_markov::{CooBuilder, MarkovChain, SparseVector};
use ust_space::{network_gen, NetworkConfig, RoadNetwork};

/// Builds the chain of a road network: random row-normalized weights over
/// the adjacency structure. Isolated nodes receive a self-loop.
pub fn chain_from_network(network: &RoadNetwork, seed: u64) -> MarkovChain {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = network.num_nodes();
    let mut builder = CooBuilder::with_capacity(n, n, network.num_edges() * 2 + n);
    for u in 0..n {
        let neighbors = network.neighbors(u);
        if neighbors.is_empty() {
            builder.push(u, u, 1.0).expect("in range");
            continue;
        }
        let mut weights: Vec<f64> = neighbors.iter().map(|_| rng.random::<f64>() + 1e-3).collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        for (&v, &w) in neighbors.iter().zip(&weights) {
            builder.push(u, v as usize, w).expect("in range");
        }
    }
    MarkovChain::from_csr(builder.build()).expect("rows normalized by construction")
}

/// A road-network dataset: database + the generating network.
#[derive(Debug)]
pub struct NetworkDataset {
    /// Database with the network-derived chain and random objects.
    pub db: TrajectoryDatabase,
    /// The underlying road network (the state-space embedding).
    pub network: RoadNetwork,
}

/// Parameters for object placement on a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkObjectConfig {
    /// Number of objects.
    pub num_objects: usize,
    /// Number of start nodes per object (uncertainty of the anchor fix):
    /// the anchor node plus up to `object_spread − 1` of its neighbors.
    pub object_spread: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NetworkObjectConfig {
    fn default() -> Self {
        NetworkObjectConfig { num_objects: 10_000, object_spread: 5, seed: 0x0BD5 }
    }
}

/// Populates a database over `network`.
pub fn generate_on_network(network: RoadNetwork, objects: &NetworkObjectConfig) -> NetworkDataset {
    let chain = chain_from_network(&network, objects.seed ^ 0xC0DE);
    let mut rng = StdRng::seed_from_u64(objects.seed);
    let n = network.num_nodes();
    let mut db = TrajectoryDatabase::new(chain);
    for id in 0..objects.num_objects {
        let anchor_node = rng.random_range(0..n);
        let mut pairs = vec![(anchor_node, rng.random::<f64>() + 1e-3)];
        for &nb in
            network.neighbors(anchor_node).iter().take(objects.object_spread.saturating_sub(1))
        {
            pairs.push((nb as usize, rng.random::<f64>() + 1e-3));
        }
        let dist = SparseVector::from_pairs(n, pairs).expect("nodes in range");
        db.insert(UncertainObject::with_single_observation(
            id as u64,
            Observation::uncertain(0, dist).expect("positive weights"),
        ))
        .expect("valid object");
    }
    NetworkDataset { db, network }
}

/// Generates a dataset over a synthetic network described by `config`.
pub fn generate(config: &NetworkConfig, objects: &NetworkObjectConfig) -> NetworkDataset {
    generate_on_network(network_gen::generate(config), objects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ust_space::StateSpace;

    #[test]
    fn chain_uses_adjacency_structure() {
        let network = network_gen::generate(&network_gen::small_city(3));
        let chain = chain_from_network(&network, 7);
        assert_eq!(chain.num_states(), network.num_nodes());
        // Non-zero entries mirror the adjacency lists exactly.
        for u in 0..network.num_nodes() {
            let (cols, vals) = chain.matrix().row(u);
            assert_eq!(
                cols.iter().map(|&c| c as usize).collect::<Vec<_>>(),
                network.neighbors(u).iter().map(|&v| v as usize).collect::<Vec<_>>()
            );
            let sum: f64 = vals.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn isolated_nodes_get_self_loops() {
        let network = RoadNetwork::from_edges(
            vec![
                ust_space::Point2::new(0.0, 0.0),
                ust_space::Point2::new(1.0, 0.0),
                ust_space::Point2::new(2.0, 0.0),
            ],
            &[(0, 1)],
        );
        let chain = chain_from_network(&network, 1);
        assert_eq!(chain.matrix().get(2, 2), 1.0);
    }

    #[test]
    fn objects_are_anchored_on_nodes_with_spread() {
        let dataset = generate(
            &network_gen::small_city(5),
            &NetworkObjectConfig { num_objects: 50, object_spread: 4, seed: 9 },
        );
        assert_eq!(dataset.db.len(), 50);
        assert_eq!(dataset.db.num_states(), dataset.network.num_states());
        for o in dataset.db.objects() {
            let nnz = o.initial_distribution().nnz();
            assert!((1..=4).contains(&nnz), "spread {nnz}");
            assert!((o.initial_distribution().sum() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = network_gen::small_city(2);
        let objs = NetworkObjectConfig { num_objects: 10, object_spread: 3, seed: 4 };
        let a = generate(&cfg, &objs);
        let b = generate(&cfg, &objs);
        assert!(a.db.models()[0].matrix().approx_eq(b.db.models()[0].matrix(), 0.0));
        assert_eq!(
            a.db.object(3).unwrap().initial_distribution(),
            b.db.object(3).unwrap().initial_distribution()
        );
    }
}
