//! Clustered-placement workloads for exercising the spatio-temporal
//! candidate index at scale.
//!
//! The paper's synthetic generator ([`crate::synthetic`]) places objects
//! uniformly over the state space, which makes every region query touch a
//! proportional share of the database — fine for kernel benchmarks, but a
//! worst case for index pruning. Real trajectory databases are clustered:
//! most objects concentrate in a dense "city" band while the remainder
//! spreads thinly over the countryside. This module reproduces that shape
//! so a *selective* window (in the sparse region, early time horizon)
//! prunes almost everything while a *broad* window (over the city, long
//! horizon) keeps the index honest about its overhead.
//!
//! The motion model is the same banded random chain as the synthetic
//! generator; only object placement differs.

// lint: allow-file(panicking-call-in-lib) — synthetic dataset generator:
// states are sampled from `0..n` and weights are positive, so every `expect` guards an
// invariant the generator itself establishes; a failure is a bug in this
// file, not recoverable caller input.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ust_core::{Observation, QueryWindow, Result, TrajectoryDatabase, UncertainObject};
use ust_markov::SparseVector;
use ust_space::{LineSpace, TimeSet};

use crate::synthetic::{synthetic_chain, SyntheticConfig};

/// Parameters of the clustered-placement index workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexWorkloadConfig {
    /// Number of uncertain objects `|D|`.
    pub num_objects: usize,
    /// Number of states `|S|`.
    pub num_states: usize,
    /// Fraction of objects placed inside the dense city band.
    pub city_fraction: f64,
    /// Fraction of the state space the city band occupies (from state 0).
    pub city_width: f64,
    /// Number of possible start states per object.
    pub object_spread: usize,
    /// Number of successor states per state.
    pub state_spread: usize,
    /// Width of the locality band reachable in one transition.
    pub max_step: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IndexWorkloadConfig {
    fn default() -> Self {
        IndexWorkloadConfig {
            num_objects: 100_000,
            num_states: 100_000,
            city_fraction: 0.9,
            city_width: 0.1,
            object_spread: 5,
            state_spread: 5,
            max_step: 40,
            seed: 0x1DE7,
        }
    }
}

impl IndexWorkloadConfig {
    /// A small configuration for unit tests and examples.
    pub fn small() -> Self {
        IndexWorkloadConfig {
            num_objects: 200,
            num_states: 2_000,
            ..IndexWorkloadConfig::default()
        }
    }

    /// The equivalent synthetic-model configuration (drives the chain).
    fn chain_config(&self) -> SyntheticConfig {
        SyntheticConfig {
            num_objects: self.num_objects,
            num_states: self.num_states,
            object_spread: self.object_spread,
            state_spread: self.state_spread,
            max_step: self.max_step,
            seed: self.seed,
        }
    }

    /// Last state (exclusive) of the city band.
    fn city_end(&self) -> usize {
        ((self.num_states as f64 * self.city_width) as usize).clamp(1, self.num_states)
    }
}

/// A generated clustered workload: database, embedding, and the query
/// windows the benchmark runs against it.
#[derive(Debug)]
pub struct IndexWorkload {
    /// The uncertain-trajectory database (shared chain + objects).
    pub db: TrajectoryDatabase,
    /// The 1-D state space the states live in.
    pub space: LineSpace,
    /// The generating configuration.
    pub config: IndexWorkloadConfig,
}

impl IndexWorkload {
    /// A selective region query: a narrow window deep in the sparse
    /// countryside with a short time horizon. Reachability cones of city
    /// objects (and of almost all sparse objects) cannot touch it, so the
    /// index prunes the overwhelming majority of the database.
    pub fn selective_window(&self) -> Result<QueryWindow> {
        let n = self.config.num_states;
        let center = self.config.city_end() + (n - self.config.city_end()) * 9 / 10;
        let lo = center.min(n - 9);
        QueryWindow::from_states(n, lo..lo + 8, TimeSet::interval(0, 2))
    }

    /// A broad region query: the whole city band over a long horizon.
    /// Most of the database survives the prefilter, so this window
    /// measures index overhead rather than pruning benefit.
    pub fn broad_window(&self) -> Result<QueryWindow> {
        let n = self.config.num_states;
        QueryWindow::from_states(n, 0..self.config.city_end(), TimeSet::interval(0, 25))
    }
}

/// Draws one object anchored at time 0 with a contiguous `object_spread`
/// PDF whose start lies in `[lo, hi)`.
fn placed_object(
    id: u64,
    config: &IndexWorkloadConfig,
    lo: usize,
    hi: usize,
    rng: &mut StdRng,
) -> UncertainObject {
    let n = config.num_states;
    let spread = config.object_spread.clamp(1, n);
    let hi = hi.min(n - spread + 1).max(lo + 1);
    let start = lo + rng.random_range(0..(hi - lo));
    let mut pairs = Vec::with_capacity(spread);
    for offset in 0..spread {
        pairs.push((start + offset, rng.random::<f64>() + 1e-3));
    }
    let dist = SparseVector::from_pairs(n, pairs).expect("states in range");
    UncertainObject::with_single_observation(
        id,
        Observation::uncertain(0, dist).expect("positive weights"),
    )
}

/// Generates the complete clustered workload for `config`.
pub fn generate_index_workload(config: &IndexWorkloadConfig) -> IndexWorkload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let chain = synthetic_chain(&config.chain_config(), &mut rng);
    let mut db = TrajectoryDatabase::new(chain);
    let city_end = config.city_end();
    let city_objects =
        ((config.num_objects as f64 * config.city_fraction) as usize).min(config.num_objects);
    for id in 0..config.num_objects {
        let (lo, hi) = if id < city_objects {
            (0, city_end)
        } else {
            (city_end.min(config.num_states - 1), config.num_states)
        };
        db.insert(placed_object(id as u64, config, lo, hi, &mut rng))
            .expect("generated objects are valid");
    }
    IndexWorkload { db, space: LineSpace::new(config.num_states), config: *config }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_respects_city_band() {
        let config = IndexWorkloadConfig::small();
        let data = generate_index_workload(&config);
        assert_eq!(data.db.len(), config.num_objects);
        let city_end = config.city_end();
        let city_objects = (config.num_objects as f64 * config.city_fraction) as usize;
        for (i, o) in data.db.objects().iter().enumerate() {
            let min_state =
                o.initial_distribution().iter().map(|(s, _)| s).min().expect("non-empty pdf");
            if i < city_objects {
                assert!(min_state < city_end, "object {i} starts at {min_state}");
            } else {
                assert!(min_state >= city_end, "object {i} starts at {min_state}");
            }
            assert_eq!(o.anchor().time(), 0);
        }
    }

    #[test]
    fn windows_are_valid_and_disjoint_in_character() {
        let data = generate_index_workload(&IndexWorkloadConfig::small());
        let selective = data.selective_window().unwrap();
        let broad = data.broad_window().unwrap();
        assert!(selective.states().count() < broad.states().count());
        assert!(selective.t_end() < broad.t_end());
        // The selective window sits entirely outside the city band.
        let city_end = data.config.city_end();
        assert!(selective.states().to_indices().iter().all(|&s| s >= city_end));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = IndexWorkloadConfig::small();
        let a = generate_index_workload(&config);
        let b = generate_index_workload(&config);
        assert_eq!(
            a.db.object(13).unwrap().initial_distribution(),
            b.db.object(13).unwrap().initial_distribution()
        );
    }
}
