//! Plain-text persistence for chains and trajectory databases.
//!
//! A deliberately simple line-oriented format (no serialization crates
//! needed — the workspace keeps external dependencies at zero) so that datasets can be
//! generated once and reused across benchmark runs, or exchanged with other
//! tools:
//!
//! ```text
//! ust-dataset v1
//! models 1
//! chain <num_states> <nnz>
//! <row> <col> <prob>          # nnz triplet lines
//! objects <count>
//! object <id> <model> <num_observations>
//! obs <time> <nnz>
//! <state> <prob>              # nnz support lines
//! ```

use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use ust_core::{Observation, QueryError, TrajectoryDatabase, UncertainObject};
use ust_markov::{CooBuilder, MarkovChain, SparseVector};

/// Errors raised while reading or writing datasets.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed input at a specific line (1-based).
    Parse {
        /// Line number of the offending input.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed data is structurally invalid (e.g. non-stochastic rows).
    Invalid(QueryError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IoError::Invalid(e) => write!(f, "invalid dataset: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<QueryError> for IoError {
    fn from(e: QueryError) -> Self {
        IoError::Invalid(e)
    }
}

impl From<ust_markov::MarkovError> for IoError {
    fn from(e: ust_markov::MarkovError) -> Self {
        IoError::Invalid(QueryError::from(e))
    }
}

/// Writes a database (all models + all objects) to `w`.
pub fn write_database<W: Write>(db: &TrajectoryDatabase, w: &mut W) -> Result<(), IoError> {
    writeln!(w, "ust-dataset v1")?;
    writeln!(w, "models {}", db.models().len())?;
    for chain in db.models() {
        let m = chain.matrix();
        writeln!(w, "chain {} {}", m.nrows(), m.nnz())?;
        for i in 0..m.nrows() {
            let (cols, vals) = m.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                writeln!(w, "{i} {c} {v:.17}")?;
            }
        }
    }
    writeln!(w, "objects {}", db.len())?;
    for object in db.objects() {
        writeln!(w, "object {} {} {}", object.id(), object.model(), object.observations().len())?;
        for obs in object.observations() {
            writeln!(w, "obs {} {}", obs.time(), obs.distribution().nnz())?;
            for (s, p) in obs.distribution().iter() {
                writeln!(w, "{s} {p:.17}")?;
            }
        }
    }
    Ok(())
}

/// Saves a database to a file.
pub fn save_database(db: &TrajectoryDatabase, path: &Path) -> Result<(), IoError> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    write_database(db, &mut out)?;
    out.flush()?;
    Ok(())
}

/// Line-cursor with 1-based position tracking for error messages.
struct Cursor<R> {
    lines: std::io::Lines<BufReader<R>>,
    line_no: usize,
}

impl<R: Read> Cursor<R> {
    fn new(r: R) -> Self {
        Cursor { lines: BufReader::new(r).lines(), line_no: 0 }
    }

    fn next(&mut self) -> Result<String, IoError> {
        loop {
            self.line_no += 1;
            match self.lines.next() {
                None => {
                    return Err(IoError::Parse {
                        line: self.line_no,
                        message: "unexpected end of input".into(),
                    })
                }
                Some(Err(e)) => return Err(IoError::Io(e)),
                Some(Ok(line)) => {
                    let trimmed = line.split('#').next().unwrap_or("").trim().to_string();
                    if !trimmed.is_empty() {
                        return Ok(trimmed);
                    }
                }
            }
        }
    }

    fn error(&self, message: impl Into<String>) -> IoError {
        IoError::Parse { line: self.line_no, message: message.into() }
    }

    fn expect_tag<'a>(&mut self, tag: &str, line: &'a str) -> Result<Vec<&'a str>, IoError> {
        let mut parts = line.split_whitespace();
        if parts.next() != Some(tag) {
            return Err(self.error(format!("expected '{tag}', got '{line}'")));
        }
        Ok(parts.collect())
    }

    fn parse<T: std::str::FromStr>(&self, token: Option<&str>, what: &str) -> Result<T, IoError> {
        token
            .ok_or_else(|| self.error(format!("missing {what}")))?
            .parse::<T>()
            .map_err(|_| self.error(format!("malformed {what}")))
    }
}

/// Reads a database from `r`.
pub fn read_database<R: Read>(r: R) -> Result<TrajectoryDatabase, IoError> {
    let mut cur = Cursor::new(r);
    let header = cur.next()?;
    if header != "ust-dataset v1" {
        return Err(cur.error(format!("unsupported header '{header}'")));
    }
    let line = cur.next()?;
    let args = cur.expect_tag("models", &line)?;
    let num_models: usize = cur.parse(args.first().copied(), "model count")?;
    if num_models == 0 {
        return Err(cur.error("at least one model required"));
    }

    let mut chains = Vec::with_capacity(num_models);
    for _ in 0..num_models {
        let line = cur.next()?;
        let args = cur.expect_tag("chain", &line)?;
        let n: usize = cur.parse(args.first().copied(), "state count")?;
        let nnz: usize = cur.parse(args.get(1).copied(), "nnz count")?;
        let mut builder = CooBuilder::with_capacity(n, n, nnz);
        for _ in 0..nnz {
            let line = cur.next()?;
            let mut parts = line.split_whitespace();
            let row: usize = cur.parse(parts.next(), "row index")?;
            let col: usize = cur.parse(parts.next(), "column index")?;
            let val: f64 = cur.parse(parts.next(), "probability")?;
            builder.push(row, col, val).map_err(IoError::from)?;
        }
        chains.push(MarkovChain::from_csr(builder.build()).map_err(IoError::from)?);
    }
    let num_states = chains[0].num_states();
    let mut db = TrajectoryDatabase::with_models(chains)?;

    let line = cur.next()?;
    let args = cur.expect_tag("objects", &line)?;
    let num_objects: usize = cur.parse(args.first().copied(), "object count")?;
    for _ in 0..num_objects {
        let line = cur.next()?;
        let args = cur.expect_tag("object", &line)?;
        let id: u64 = cur.parse(args.first().copied(), "object id")?;
        let model: usize = cur.parse(args.get(1).copied(), "model index")?;
        let num_obs: usize = cur.parse(args.get(2).copied(), "observation count")?;
        let mut observations = Vec::with_capacity(num_obs);
        for _ in 0..num_obs {
            let line = cur.next()?;
            let args = cur.expect_tag("obs", &line)?;
            let time: u32 = cur.parse(args.first().copied(), "observation time")?;
            let nnz: usize = cur.parse(args.get(1).copied(), "support size")?;
            let mut pairs = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                let line = cur.next()?;
                let mut parts = line.split_whitespace();
                let state: usize = cur.parse(parts.next(), "state id")?;
                let prob: f64 = cur.parse(parts.next(), "probability")?;
                pairs.push((state, prob));
            }
            let dist = SparseVector::from_pairs(num_states, pairs).map_err(IoError::from)?;
            observations.push(Observation::uncertain(time, dist)?);
        }
        db.insert(UncertainObject::new(id, observations)?.with_model(model))?;
    }
    Ok(db)
}

/// Loads a database from a file.
pub fn load_database(path: &Path) -> Result<TrajectoryDatabase, IoError> {
    read_database(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ust_core::engine::{query_based, EngineConfig};
    use ust_core::{EvalStats, QueryWindow};
    use ust_space::TimeSet;

    fn sample_db() -> TrajectoryDatabase {
        let data = crate::synthetic::generate(&crate::SyntheticConfig {
            num_objects: 12,
            num_states: 200,
            ..crate::SyntheticConfig::small()
        });
        data.db
    }

    #[test]
    fn roundtrip_preserves_query_results() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_database(&db, &mut buf).unwrap();
        let loaded = read_database(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), db.len());
        assert_eq!(loaded.num_states(), db.num_states());

        let window = QueryWindow::from_states(200, 50usize..=60, TimeSet::interval(4, 8)).unwrap();
        let a =
            query_based::evaluate(&db, &window, &EngineConfig::default(), &mut EvalStats::new())
                .unwrap();
        let b = query_based::evaluate(
            &loaded,
            &window,
            &EngineConfig::default(),
            &mut EvalStats::new(),
        )
        .unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.object_id, y.object_id);
            assert!((x.probability - y.probability).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_multi_model_and_multi_observation() {
        let chain_a = ust_markov::testutil::random_chain(1, 50, 3);
        let chain_b = ust_markov::testutil::random_chain(2, 50, 3);
        let mut db = TrajectoryDatabase::with_models(vec![chain_a, chain_b]).unwrap();
        db.insert(
            UncertainObject::new(
                7,
                vec![Observation::exact(0, 50, 3).unwrap(), Observation::exact(5, 50, 10).unwrap()],
            )
            .unwrap()
            .with_model(1),
        )
        .unwrap();
        let mut buf = Vec::new();
        write_database(&db, &mut buf).unwrap();
        let loaded = read_database(buf.as_slice()).unwrap();
        assert_eq!(loaded.models().len(), 2);
        let o = loaded.object(0).unwrap();
        assert_eq!(o.id(), 7);
        assert_eq!(o.model(), 1);
        assert_eq!(o.observations().len(), 2);
        assert_eq!(o.observations()[1].time(), 5);
        assert!(loaded.models()[1].matrix().approx_eq(db.models()[1].matrix(), 1e-15));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ust_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dataset.ust");
        let db = sample_db();
        save_database(&db, &path).unwrap();
        let loaded = load_database(&path).unwrap();
        assert_eq!(loaded.len(), db.len());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad_header = "not-a-dataset\n";
        match read_database(bad_header.as_bytes()) {
            Err(IoError::Parse { line: 1, .. }) => {}
            other => panic!("expected header parse error, got {other:?}"),
        }
        let truncated = "ust-dataset v1\nmodels 1\nchain 3 2\n0 1 0.5\n";
        assert!(matches!(read_database(truncated.as_bytes()), Err(IoError::Parse { .. })));
        let bad_number = "ust-dataset v1\nmodels x\n";
        match read_database(bad_number.as_bytes()) {
            Err(IoError::Parse { line: 2, message }) => {
                assert!(message.contains("model count"));
            }
            other => panic!("expected number parse error, got {other:?}"),
        }
    }

    #[test]
    fn invalid_chain_is_rejected_structurally() {
        // Rows that don't sum to 1 must be rejected by validation, not
        // silently accepted.
        let text = "ust-dataset v1\nmodels 1\nchain 2 2\n0 0 0.5\n1 1 1.0\nobjects 0\n";
        assert!(matches!(read_database(text.as_bytes()), Err(IoError::Invalid(_))));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_database(&db, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let commented =
            format!("# leading comment\n\n{}", text.replace("objects", "\n# mid comment\nobjects"));
        let loaded = read_database(commented.as_bytes()).unwrap();
        assert_eq!(loaded.len(), db.len());
    }

    #[test]
    fn error_display_is_informative() {
        let e = IoError::Parse { line: 42, message: "boom".into() };
        assert!(e.to_string().contains("42"));
        let e = IoError::from(std::io::Error::other("disk"));
        assert!(e.to_string().contains("disk"));
    }
}
