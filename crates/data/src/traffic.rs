//! Traffic prediction scenario (the paper's road-network motivation).
//!
//! "Another query could be to predict the number of cars that will be in a
//! congested road segment after 10-15 minutes." This module builds a small
//! urban network with cars anchored at random nodes and provides the
//! aggregate the paper's example asks for: the expected number of objects
//! intersecting a window, which by linearity of expectation is the sum of
//! the per-object PST∃Q probabilities (or, for occupancy at a single time,
//! the sum of marginals).

use ust_core::engine::{query_based, EngineConfig};
use ust_core::{EvalStats, QueryWindow, Result, TrajectoryDatabase};
use ust_space::{network_gen, NetworkConfig, Region, RoadNetwork, TimeSet};

use crate::network_data::{generate_on_network, NetworkDataset, NetworkObjectConfig};

/// Configuration of the traffic scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Road-network shape.
    pub network: NetworkConfig,
    /// Vehicle placement.
    pub objects: NetworkObjectConfig,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            network: network_gen::small_city(0x7A),
            objects: NetworkObjectConfig { num_objects: 500, object_spread: 3, seed: 0x7A },
        }
    }
}

/// Generates the traffic dataset.
pub fn generate(config: &TrafficConfig) -> NetworkDataset {
    generate_on_network(network_gen::generate(&config.network), &config.objects)
}

/// Expected number of objects intersecting `window` (Σ_o P∃(o)) — the
/// paper's "how many cars will be in this segment in 10–15 minutes".
pub fn expected_objects_in_window(db: &TrajectoryDatabase, window: &QueryWindow) -> Result<f64> {
    let results =
        query_based::evaluate(db, window, &EngineConfig::default(), &mut EvalStats::new())?;
    Ok(results.iter().map(|r| r.probability).sum())
}

/// Builds the query window for a congested road segment: all nodes within
/// the given circular region, over the time interval `[t_from, t_to]`.
pub fn segment_window(
    network: &RoadNetwork,
    center: ust_space::Point2,
    radius: f64,
    t_from: u32,
    t_to: u32,
) -> Result<QueryWindow> {
    QueryWindow::from_region(
        network,
        &Region::circle(center, radius),
        TimeSet::interval(t_from, t_to),
    )
}

/// Ranks circular regions by expected occupancy — a straightforward
/// implementation of the paper's closing future-work idea ("find areas that
/// are expected to become congested together with the time periods").
pub fn hotspot_ranking(
    dataset: &NetworkDataset,
    candidate_centers: &[ust_space::Point2],
    radius: f64,
    t_from: u32,
    t_to: u32,
) -> Result<Vec<(usize, f64)>> {
    let mut ranked = Vec::with_capacity(candidate_centers.len());
    for (i, &center) in candidate_centers.iter().enumerate() {
        let expected = match segment_window(&dataset.network, center, radius, t_from, t_to) {
            Ok(window) => expected_objects_in_window(&dataset.db, &window)?,
            // Regions with no road nodes simply have zero expected traffic.
            Err(ust_core::QueryError::EmptySpatialWindow) => 0.0,
            Err(e) => return Err(e),
        };
        ranked.push((i, expected));
    }
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    Ok(ranked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ust_space::{Point2, StateSpace};

    fn small_config() -> TrafficConfig {
        TrafficConfig {
            network: NetworkConfig { num_nodes: 300, num_edges: 400, extent: 50.0, seed: 5 },
            objects: NetworkObjectConfig { num_objects: 80, object_spread: 3, seed: 5 },
        }
    }

    #[test]
    fn expected_occupancy_is_bounded_by_fleet_size() {
        let dataset = generate(&small_config());
        let center = dataset.network.location(0);
        let window = segment_window(&dataset.network, center, 10.0, 3, 6).unwrap();
        let expected = expected_objects_in_window(&dataset.db, &window).unwrap();
        assert!(expected >= 0.0);
        assert!(expected <= dataset.db.len() as f64);
    }

    #[test]
    fn wider_regions_attract_more_traffic() {
        let dataset = generate(&small_config());
        let center = Point2::new(25.0, 25.0);
        let narrow = segment_window(&dataset.network, center, 5.0, 2, 5).unwrap();
        let wide = segment_window(&dataset.network, center, 20.0, 2, 5).unwrap();
        let e_narrow = expected_objects_in_window(&dataset.db, &narrow).unwrap();
        let e_wide = expected_objects_in_window(&dataset.db, &wide).unwrap();
        assert!(e_wide >= e_narrow);
        assert!(e_wide > 0.0);
    }

    #[test]
    fn hotspot_ranking_is_sorted_and_total() {
        let dataset = generate(&small_config());
        let centers = vec![
            Point2::new(10.0, 10.0),
            Point2::new(25.0, 25.0),
            Point2::new(45.0, 45.0),
            Point2::new(-100.0, -100.0), // off-map: zero expected traffic
        ];
        let ranked = hotspot_ranking(&dataset, &centers, 8.0, 2, 4).unwrap();
        assert_eq!(ranked.len(), 4);
        for pair in ranked.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        let off_map = ranked.iter().find(|(i, _)| *i == 3).unwrap();
        assert_eq!(off_map.1, 0.0);
    }
}
