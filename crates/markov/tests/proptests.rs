//! Property-based tests of the linear-algebra substrate: the algebraic
//! invariants every query engine silently relies on.

use proptest::prelude::*;

use ust_markov::augmented;
use ust_markov::testutil;
use ust_markov::{
    CsrMatrix, DenseVector, KernelMode, MarkovChain, PropagationVector, SparseVector, SpmvScratch,
    StateMask, StochasticMatrix,
};

/// A batch of propagation vectors with mixed representations and densify
/// policies — the compositions the batched kernels must keep bit-identical
/// to solo stepping.
fn mixed_batch(rng: &mut rand::rngs::StdRng, n: usize, members: usize) -> Vec<PropagationVector> {
    (0..members)
        .map(|k| {
            let start = testutil::random_distribution(rng, n, 1 + k % 4);
            let threshold = [0.0, 0.25, 1.0][k % 3];
            if k % 2 == 0 {
                PropagationVector::from_sparse(start).with_densify_threshold(threshold)
            } else {
                PropagationVector::from_dense(start.to_dense()).with_densify_threshold(threshold)
            }
        })
        .collect()
}

fn chain_params() -> impl Strategy<Value = (u64, usize, usize)> {
    (0u64..10_000, 2usize..=24, 1usize..=5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_generator_produces_stochastic_matrices((seed, n, deg) in chain_params()) {
        let mut rng = testutil::rng(seed);
        let m = testutil::random_stochastic(&mut rng, n, deg);
        prop_assert!(StochasticMatrix::new(m).is_ok());
    }

    #[test]
    fn product_of_stochastic_matrices_is_stochastic((seed, n, deg) in chain_params()) {
        let mut rng = testutil::rng(seed);
        let a = testutil::random_stochastic(&mut rng, n, deg);
        let b = testutil::random_stochastic(&mut rng, n, deg);
        let product = a.matmul(&b).unwrap();
        prop_assert!(StochasticMatrix::with_tolerance(product, 1e-9).is_ok());
    }

    #[test]
    fn transpose_is_involutive_and_preserves_nnz((seed, n, deg) in chain_params()) {
        let mut rng = testutil::rng(seed);
        let m = testutil::random_stochastic(&mut rng, n, deg);
        let t = m.transpose();
        prop_assert_eq!(t.nnz(), m.nnz());
        prop_assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn sparse_and_dense_vecmat_agree((seed, n, deg) in chain_params(), spread in 1usize..=6) {
        let mut rng = testutil::rng(seed);
        let m = testutil::random_stochastic(&mut rng, n, deg);
        let v = testutil::random_distribution(&mut rng, n, spread);
        let sparse_out = m.vecmat_sparse(&v).unwrap().to_dense();
        let dense_out = m.vecmat_dense(&v.to_dense()).unwrap();
        prop_assert!(sparse_out.approx_eq(&dense_out, 1e-12));
    }

    #[test]
    fn matvec_is_vecmat_of_transpose((seed, n, deg) in chain_params()) {
        let mut rng = testutil::rng(seed);
        let m = testutil::random_stochastic(&mut rng, n, deg);
        let v = testutil::random_distribution(&mut rng, n, (n / 2).max(1)).to_dense();
        let a = m.matvec_dense(&v).unwrap();
        let b = m.transpose().vecmat_dense(&v).unwrap();
        prop_assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn propagation_preserves_total_mass((seed, n, deg) in chain_params(), steps in 0u32..12) {
        let chain = MarkovChain::from_csr({
            let mut rng = testutil::rng(seed);
            testutil::random_stochastic(&mut rng, n, deg)
        }).unwrap();
        let mut rng = testutil::rng(seed ^ 1);
        let start = testutil::random_distribution(&mut rng, n, 2);
        let out = chain.propagate_sparse(&start, steps).unwrap();
        prop_assert!((out.sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn power_matches_iterated_propagation((seed, n, deg) in chain_params(), steps in 0u32..6) {
        let chain = MarkovChain::from_csr({
            let mut rng = testutil::rng(seed);
            testutil::random_stochastic(&mut rng, n, deg)
        }).unwrap();
        let mut rng = testutil::rng(seed ^ 2);
        let start = testutil::random_distribution(&mut rng, n, 2).to_dense();
        let direct = chain.m_step_matrix(steps).unwrap().transpose().transpose()
            .vecmat_dense(&start).unwrap();
        let stepped = chain.propagate_dense(&start, steps).unwrap();
        prop_assert!(direct.approx_eq(&stepped, 1e-9));
    }

    #[test]
    fn augmented_matrices_preserve_stochasticity(
        (seed, n, deg) in chain_params(),
        mask_seed in 0u64..1_000,
    ) {
        let mut rng = testutil::rng(seed);
        let m = testutil::random_stochastic(&mut rng, n, deg);
        let mut mask_rng = testutil::rng(mask_seed);
        let mut mask = StateMask::new(n);
        use rand::Rng as _;
        for s in 0..n {
            if mask_rng.random::<f64>() < 0.4 {
                mask.insert(s).unwrap();
            }
        }
        for aug in [
            augmented::exists_minus(&m),
            augmented::exists_plus(&m, &mask),
            augmented::doubled_minus(&m),
            augmented::doubled_plus(&m, &mask),
            augmented::ktimes_minus(&m, 3),
            augmented::ktimes_plus(&m, &mask, 3),
        ] {
            prop_assert!(StochasticMatrix::with_tolerance(aug, 1e-9).is_ok());
        }
    }

    #[test]
    fn hybrid_vector_agrees_with_pure_sparse(
        (seed, n, deg) in chain_params(),
        steps in 0u32..8,
        threshold in 0.0f64..=1.0,
    ) {
        let mut rng = testutil::rng(seed);
        let m = testutil::random_stochastic(&mut rng, n, deg);
        let start = testutil::random_distribution(&mut rng, n, 2);
        let mut scratch = SpmvScratch::new();
        let mut hybrid = PropagationVector::from_sparse(start.clone())
            .with_densify_threshold(threshold);
        let mut reference = PropagationVector::from_sparse(start)
            .with_densify_threshold(1.0);
        for _ in 0..steps {
            hybrid.step(&m, &mut scratch).unwrap();
            reference.step(&m, &mut scratch).unwrap();
        }
        prop_assert!(hybrid.to_dense().approx_eq(&reference.to_dense(), 1e-12));
    }

    #[test]
    fn batched_step_is_bit_identical_to_solo_steps(
        (seed, n, deg) in chain_params(),
        members in 1usize..=6,
        steps in 0u32..6,
        mode_sel in 0u8..3,
        mask_seed in 0u64..1_000,
    ) {
        // The PR 6 contract: every kernel the batched path can choose —
        // shared-union sparse merge, dense panels (any panel width the
        // dimension induces), per-object fallback, and the Auto heuristic
        // mixing them — produces the *same bits* as stepping each member
        // alone, for any batch composition and activity mask.
        let mode = match mode_sel {
            0 => KernelMode::Auto,
            1 => KernelMode::SharedUnion,
            _ => KernelMode::PerObject,
        };
        let mut rng = testutil::rng(seed);
        let m = testutil::random_stochastic(&mut rng, n, deg);
        let mut batch = mixed_batch(&mut rng, n, members);
        use rand::Rng as _;
        let mut mask_rng = testutil::rng(mask_seed);
        let active: Vec<bool> = (0..members).map(|_| mask_rng.random::<f64>() < 0.8).collect();
        let mut solo = batch.clone();
        let mut batch_scratch = SpmvScratch::new();
        let mut solo_scratch = SpmvScratch::new();
        for _ in 0..steps {
            m.step_batch_with_mode(&mut batch, &active, mode, &mut batch_scratch).unwrap();
            for (k, row) in solo.iter_mut().enumerate() {
                if active[k] && row.nnz() > 0 {
                    row.step(&m, &mut solo_scratch).unwrap();
                }
            }
        }
        for (a, b) in batch.iter().zip(solo.iter()) {
            // Derived equality covers representation, values *and* the
            // tracked non-zero count, all bit-for-bit.
            prop_assert_eq!(a, b);
            prop_assert_eq!(a.nnz(), a.to_dense().nnz(), "tracked nnz matches a rescan");
        }
    }

    #[test]
    fn kernel_modes_agree_and_touch_the_same_entries(
        (seed, n, deg) in chain_params(),
        members in 2usize..=5,
        steps in 1u32..5,
    ) {
        // entries_touched counts multiplies per vector fed, so it is
        // invariant across kernel choices — the property that makes
        // entries/second comparable across modes in the benchmarks.
        let mut rng = testutil::rng(seed);
        let m = testutil::random_stochastic(&mut rng, n, deg);
        let batch = mixed_batch(&mut rng, n, members);
        let active = vec![true; members];
        let mut outcomes = Vec::new();
        for mode in [KernelMode::Auto, KernelMode::SharedUnion, KernelMode::PerObject] {
            let mut rows = batch.clone();
            let mut scratch = SpmvScratch::new();
            let mut entries = 0u64;
            for _ in 0..steps {
                let report =
                    m.step_batch_with_mode(&mut rows, &active, mode, &mut scratch).unwrap();
                entries += report.entries_touched;
            }
            outcomes.push((rows, entries));
        }
        let (reference, ref_entries) = &outcomes[0];
        prop_assert!(*ref_entries > 0);
        for (rows, entries) in &outcomes[1..] {
            prop_assert_eq!(entries, ref_entries);
            for (a, b) in rows.iter().zip(reference.iter()) {
                prop_assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn mask_set_laws(n in 1usize..200, seed in 0u64..1_000) {
        let mut rng = testutil::rng(seed);
        use rand::Rng as _;
        let mut a = StateMask::new(n);
        let mut b = StateMask::new(n);
        for s in 0..n {
            if rng.random::<f64>() < 0.3 { a.insert(s).unwrap(); }
            if rng.random::<f64>() < 0.3 { b.insert(s).unwrap(); }
        }
        // De Morgan: ¬(a ∪ b) = ¬a ∩ ¬b.
        let lhs = a.union(&b).unwrap().complement();
        let rhs = a.complement().intersection(&b.complement()).unwrap();
        prop_assert_eq!(lhs.to_indices(), rhs.to_indices());
        // |a| + |¬a| = n.
        prop_assert_eq!(a.count() + a.complement().count(), n);
        // intersects ⇔ non-empty intersection.
        prop_assert_eq!(a.intersects(&b), !a.intersection(&b).unwrap().is_empty());
    }

    #[test]
    fn sparse_vector_algebra(
        n in 1usize..100,
        seed in 0u64..1_000,
    ) {
        let mut rng = testutil::rng(seed);
        let a = testutil::random_distribution(&mut rng, n, (n / 3).max(1));
        let b = testutil::random_distribution(&mut rng, n, (n / 4).max(1));
        // Commutativity of dot and add.
        prop_assert!((a.dot_sparse(&b).unwrap() - b.dot_sparse(&a).unwrap()).abs() < 1e-12);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert!(ab.to_dense().approx_eq(&ba.to_dense(), 1e-12));
        // Dense agreement.
        let dense_dot = a.to_dense().dot(&b.to_dense()).unwrap();
        prop_assert!((a.dot_sparse(&b).unwrap() - dense_dot).abs() < 1e-12);
        // split + add round-trips.
        let mask = StateMask::from_indices(n, (0..n).step_by(2)).unwrap();
        let mut v = a.clone();
        let split = v.split_masked(&mask);
        let merged = v.add(&split).unwrap();
        prop_assert!(merged.to_dense().approx_eq(&a.to_dense(), 1e-12));
    }

    #[test]
    fn coo_builder_accumulates_duplicates(
        n in 2usize..20,
        seed in 0u64..1_000,
        extra in 1usize..30,
    ) {
        use rand::Rng as _;
        let mut rng = testutil::rng(seed);
        let mut builder = ust_markov::CooBuilder::new(n, n);
        let mut dense = vec![vec![0.0f64; n]; n];
        for _ in 0..extra {
            let r = rng.random_range(0..n);
            let c = rng.random_range(0..n);
            let v: f64 = rng.random::<f64>() - 0.5;
            builder.push(r, c, v).unwrap();
            dense[r][c] += v;
        }
        let m = builder.build();
        let reference = CsrMatrix::from_dense(&dense).unwrap();
        prop_assert!(m.approx_eq(&reference, 1e-12));
    }

    #[test]
    fn stationary_is_fixed_point_for_irreducible_chains(
        seed in 0u64..500, n in 2usize..=10,
    ) {
        // Banded chains with self-loops are usually irreducible; skip the
        // rare reducible draw.
        let mut rng = testutil::rng(seed);
        let m = testutil::random_banded_stochastic(&mut rng, n, 3.min(n), 4);
        let chain = MarkovChain::from_csr(m).unwrap();
        prop_assume!(chain.is_irreducible());
        let (pi, _) = chain.stationary(1e-13, 50_000).unwrap();
        let next = chain.step_dense(&pi).unwrap();
        prop_assert!(next.approx_eq(&pi, 1e-6));
    }
}

#[test]
fn interval_envelope_brackets_every_member_backward_vector() {
    // Deterministic variant of the Section V-C soundness property on a
    // family of perturbed chains.
    for seed in 0..20u64 {
        let n = 6;
        let mut rng = testutil::rng(seed);
        let base = testutil::random_banded_stochastic(&mut rng, n, 3, 4);
        let alt = testutil::random_banded_stochastic(&mut rng, n, 3, 4);
        let env = ust_markov::IntervalMatrix::envelope(&[&base, &alt]).unwrap();
        let window = StateMask::from_indices(n, [0usize, 1]).unwrap();
        let in_window = |t: u32| (2..=3).contains(&t);
        let (lo, hi) = env.backward_exists_bounds(&window, 3, in_window).unwrap();
        for m in [&base, &alt] {
            let exact_env = ust_markov::IntervalMatrix::envelope(&[m]).unwrap();
            let (exact, _) = exact_env.backward_exists_bounds(&window, 3, in_window).unwrap();
            for s in 0..n {
                assert!(
                    lo.get(s) <= exact.get(s) + 1e-12 && exact.get(s) <= hi.get(s) + 1e-12,
                    "seed {seed}, state {s}"
                );
            }
        }
    }
}

#[test]
fn dense_vector_masked_ops_match_naive() {
    for seed in 0..10u64 {
        let n = 64;
        let mut rng = testutil::rng(seed);
        let v = testutil::random_distribution(&mut rng, n, 20).to_dense();
        let mask = StateMask::from_indices(n, (0..n).filter(|i| i % 3 == 0)).unwrap();
        let naive: f64 = (0..n).filter(|&i| mask.contains(i)).map(|i| v.get(i)).sum();
        assert!((v.masked_sum(&mask) - naive).abs() < 1e-12);
        let mut w = v.clone();
        let extracted = w.extract_masked(&mask);
        assert!((extracted - naive).abs() < 1e-12);
        assert!((w.sum() + extracted - v.sum()).abs() < 1e-12);
        let mut x = v.clone();
        let split: SparseVector = x.split_masked(&mask);
        assert!((split.sum() - naive).abs() < 1e-12);
    }
}

#[test]
fn dense_roundtrip_through_sparse() {
    for seed in 0..10u64 {
        let mut rng = testutil::rng(seed);
        let v = testutil::random_distribution(&mut rng, 50, 17);
        let roundtrip = SparseVector::from_dense(&v.to_dense(), 0.0);
        assert_eq!(roundtrip.indices(), v.indices());
        let dv: DenseVector = v.to_dense();
        assert!((dv.sum() - 1.0).abs() < 1e-12);
    }
}
