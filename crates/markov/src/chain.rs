//! Homogeneous Markov chains over a discrete state space (Definition 5/6).
//!
//! [`MarkovChain`] bundles a validated transition matrix with the derived
//! artifacts query processing needs: the transposed matrix (built lazily and
//! cached — the query-based approach uses it for every backward step),
//! reachability analysis, and distribution propagation (Corollaries 1 and 2
//! of the paper).

use std::sync::OnceLock;

use crate::csr::{CsrMatrix, SpmvScratch};
use crate::dense::DenseVector;
use crate::error::{MarkovError, Result};
use crate::mask::StateMask;
use crate::sparse_vec::SparseVector;
use crate::stochastic::StochasticMatrix;

/// A homogeneous first-order Markov chain.
#[derive(Debug)]
pub struct MarkovChain {
    matrix: StochasticMatrix,
    transposed: OnceLock<CsrMatrix>,
}

impl Clone for MarkovChain {
    fn clone(&self) -> Self {
        MarkovChain { matrix: self.matrix.clone(), transposed: OnceLock::new() }
    }
}

impl MarkovChain {
    /// Wraps a validated transition matrix.
    pub fn new(matrix: StochasticMatrix) -> Self {
        MarkovChain { matrix, transposed: OnceLock::new() }
    }

    /// Validates `matrix` and wraps it.
    pub fn from_csr(matrix: CsrMatrix) -> Result<Self> {
        Ok(Self::new(StochasticMatrix::new(matrix)?))
    }

    /// Builds a chain by row-normalizing arbitrary non-negative weights.
    pub fn from_weights(matrix: CsrMatrix) -> Result<Self> {
        Ok(Self::new(StochasticMatrix::normalize(matrix)?))
    }

    /// Number of states `|S|`.
    pub fn num_states(&self) -> usize {
        self.matrix.dim()
    }

    /// The validated transition matrix.
    pub fn stochastic(&self) -> &StochasticMatrix {
        &self.matrix
    }

    /// The raw CSR transition matrix `M`.
    pub fn matrix(&self) -> &CsrMatrix {
        self.matrix.matrix()
    }

    /// The cached transposed matrix `Mᵀ` (computed on first use).
    pub fn transposed(&self) -> &CsrMatrix {
        self.transposed.get_or_init(|| self.matrix.transposed())
    }

    /// One forward step: `P(o, t+1) = P(o, t) · M` (Corollary 1).
    pub fn step_dense(&self, dist: &DenseVector) -> Result<DenseVector> {
        self.matrix().vecmat_dense(dist)
    }

    /// One forward step on a sparse distribution.
    pub fn step_sparse(
        &self,
        dist: &SparseVector,
        scratch: &mut SpmvScratch,
    ) -> Result<SparseVector> {
        self.matrix().vecmat_sparse_with(dist, scratch)
    }

    /// `m` forward steps: `P(o, t+m) = P(o, t) · M^m` (Corollary 2),
    /// evaluated as `m` successive vector-matrix products (cheaper than
    /// materializing `M^m` unless the power is reused many times).
    pub fn propagate_dense(&self, dist: &DenseVector, m: u32) -> Result<DenseVector> {
        let mut current = dist.clone();
        for _ in 0..m {
            current = self.step_dense(&current)?;
        }
        Ok(current)
    }

    /// `m` forward steps on a sparse distribution.
    pub fn propagate_sparse(&self, dist: &SparseVector, m: u32) -> Result<SparseVector> {
        let mut scratch = SpmvScratch::new();
        let mut current = dist.clone();
        for _ in 0..m {
            current = self.step_sparse(&current, &mut scratch)?;
        }
        Ok(current)
    }

    /// The `m`-step transition matrix `M^m` (Chapman-Kolmogorov equations).
    pub fn m_step_matrix(&self, m: u32) -> Result<CsrMatrix> {
        self.matrix().power(m)
    }

    /// States reachable from `start` within at most `steps` transitions
    /// (the `S_reach` of the paper's complexity analysis). The start states
    /// themselves are included.
    pub fn reachable_within(&self, start: &StateMask, steps: u32) -> StateMask {
        let n = self.num_states();
        let mut reached = start.clone();
        let mut frontier: Vec<usize> = start.iter().collect();
        for _ in 0..steps {
            let mut next = Vec::new();
            for &s in &frontier {
                let (cols, _) = self.matrix().row(s);
                for &c in cols {
                    let c = c as usize;
                    if c < n && !reached.contains(c) {
                        // insert cannot fail: c < n by construction
                        let _ = reached.insert(c);
                        next.push(c);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        reached
    }

    /// States that can reach `targets` within at most `steps` transitions
    /// (backward reachability over `Mᵀ`), used for query-side pruning.
    pub fn co_reachable_within(&self, targets: &StateMask, steps: u32) -> StateMask {
        let n = self.num_states();
        let transposed = self.transposed();
        let mut reached = targets.clone();
        let mut frontier: Vec<usize> = targets.iter().collect();
        for _ in 0..steps {
            let mut next = Vec::new();
            for &s in &frontier {
                let (cols, _) = transposed.row(s);
                for &c in cols {
                    let c = c as usize;
                    if c < n && !reached.contains(c) {
                        let _ = reached.insert(c);
                        next.push(c);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        reached
    }

    /// Approximates the stationary distribution by power iteration from the
    /// uniform distribution. Returns the distribution and the number of
    /// iterations used; converges for irreducible aperiodic chains.
    pub fn stationary(&self, tol: f64, max_iter: u32) -> Result<(DenseVector, u32)> {
        if self.num_states() == 0 {
            return Err(MarkovError::Empty { what: "state space" });
        }
        let mut current = DenseVector::uniform(self.num_states())?;
        for iter in 0..max_iter {
            let next = self.step_dense(&current)?;
            let delta: f64 =
                current.as_slice().iter().zip(next.as_slice()).map(|(a, b)| (a - b).abs()).sum();
            current = next;
            if delta < tol {
                return Ok((current, iter + 1));
            }
        }
        Ok((current, max_iter))
    }

    /// True when every state can reach every other state (single strongly
    /// connected component). Uses two BFS passes (forward + backward) from
    /// state 0 — O(nnz) each.
    pub fn is_irreducible(&self) -> bool {
        let n = self.num_states();
        if n == 0 {
            return false;
        }
        let origin = match StateMask::from_indices(n, [0usize]) {
            Ok(m) => m,
            Err(_) => return false,
        };
        let fwd = self.reachable_within(&origin, n as u32);
        if fwd.count() != n {
            return false;
        }
        let bwd = self.co_reachable_within(&origin, n as u32);
        bwd.count() == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_chain() -> MarkovChain {
        MarkovChain::from_csr(
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn propagation_matches_worked_example() {
        let chain = paper_chain();
        let p0 = DenseVector::from_vec(vec![0.0, 1.0, 0.0]);
        let p2 = chain.propagate_dense(&p0, 2).unwrap();
        assert!(p2.approx_eq(&DenseVector::from_vec(vec![0.0, 0.32, 0.68]), 1e-12));
        let sparse = chain.propagate_sparse(&SparseVector::unit(3, 1).unwrap(), 2).unwrap();
        assert!(sparse.to_dense().approx_eq(&p2, 1e-12));
    }

    #[test]
    fn m_step_matrix_equals_stepwise_propagation() {
        let chain = paper_chain();
        let m3 = chain.m_step_matrix(3).unwrap();
        let p0 = DenseVector::from_vec(vec![1.0, 0.0, 0.0]);
        let direct = m3.vecmat_dense(&p0).unwrap();
        let stepped = chain.propagate_dense(&p0, 3).unwrap();
        assert!(direct.approx_eq(&stepped, 1e-12));
    }

    #[test]
    fn transposed_is_cached_and_correct() {
        let chain = paper_chain();
        let t1 = chain.transposed() as *const CsrMatrix;
        let t2 = chain.transposed() as *const CsrMatrix;
        assert_eq!(t1, t2, "transpose should be computed once");
        assert_eq!(chain.transposed().get(0, 1), 0.6);
    }

    #[test]
    fn reachability_grows_with_steps() {
        let chain = paper_chain();
        let start = StateMask::from_indices(3, [0usize]).unwrap();
        let r0 = chain.reachable_within(&start, 0);
        assert_eq!(r0.to_indices(), vec![0]);
        let r1 = chain.reachable_within(&start, 1);
        assert_eq!(r1.to_indices(), vec![0, 2]);
        let r2 = chain.reachable_within(&start, 2);
        assert_eq!(r2.to_indices(), vec![0, 1, 2]);
    }

    #[test]
    fn co_reachability_uses_incoming_edges() {
        let chain = paper_chain();
        let target = StateMask::from_indices(3, [0usize]).unwrap();
        // Only s1 (index 1) has an edge into s0.
        let r1 = chain.co_reachable_within(&target, 1);
        assert_eq!(r1.to_indices(), vec![0, 1]);
    }

    #[test]
    fn stationary_distribution_is_fixed_point() {
        let chain = paper_chain();
        let (pi, iters) = chain.stationary(1e-12, 10_000).unwrap();
        assert!(iters < 10_000, "power iteration should converge");
        let next = chain.step_dense(&pi).unwrap();
        assert!(next.approx_eq(&pi, 1e-9));
        assert!((pi.sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn irreducibility_detection() {
        assert!(paper_chain().is_irreducible());
        // Two disconnected self-loop states: reducible.
        let chain = MarkovChain::from_csr(CsrMatrix::identity(2)).unwrap();
        assert!(!chain.is_irreducible());
    }

    #[test]
    fn from_weights_normalizes() {
        let raw = CsrMatrix::from_dense(&[vec![3.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let chain = MarkovChain::from_weights(raw).unwrap();
        assert_eq!(chain.matrix().get(0, 0), 0.75);
        assert_eq!(chain.num_states(), 2);
    }

    #[test]
    fn clone_preserves_matrix() {
        let chain = paper_chain();
        let _ = chain.transposed();
        let cloned = chain.clone();
        assert_eq!(cloned.matrix().get(1, 0), 0.6);
        assert_eq!(cloned.transposed().get(0, 1), 0.6);
    }
}
