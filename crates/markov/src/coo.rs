//! Triplet (coordinate-format) builder for sparse matrices.
//!
//! Transition matrices are assembled from arbitrary-order `(row, col, value)`
//! triplets — e.g. one triplet per road-network edge — and then frozen into
//! the compressed sparse row format used by the propagation kernels.

use crate::csr::CsrMatrix;
use crate::error::{MarkovError, Result};

/// Accumulates `(row, col, value)` triplets for a matrix of fixed shape.
#[derive(Debug, Clone)]
pub struct CooBuilder {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl CooBuilder {
    /// Creates a builder for an `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooBuilder { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Creates a builder with pre-allocated capacity for `cap` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooBuilder {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of triplets currently stored (duplicates not yet combined).
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when no triplet has been pushed.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Matrix shape `(nrows, ncols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Adds one triplet. Duplicate `(row, col)` pairs are summed on build.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.nrows {
            return Err(MarkovError::IndexOutOfBounds { index: row, dim: self.nrows });
        }
        if col >= self.ncols {
            return Err(MarkovError::IndexOutOfBounds { index: col, dim: self.ncols });
        }
        if value != 0.0 {
            self.rows.push(row as u32);
            self.cols.push(col as u32);
            self.vals.push(value);
        }
        Ok(())
    }

    /// Freezes the triplets into a [`CsrMatrix`], summing duplicates and
    /// dropping entries that cancel to exactly zero.
    pub fn build(self) -> CsrMatrix {
        let nnz = self.vals.len();
        // Counting sort by row: O(nnz + nrows) instead of a comparison sort.
        let mut counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            counts[r as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let mut order = vec![0usize; nnz];
        let mut next = counts.clone();
        for (k, &r) in self.rows.iter().enumerate() {
            order[next[r as usize]] = k;
            next[r as usize] += 1;
        }

        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices: Vec<u32> = Vec::with_capacity(nnz);
        let mut data: Vec<f64> = Vec::with_capacity(nnz);
        indptr.push(0);
        let mut row_buf: Vec<(u32, f64)> = Vec::new();
        for row in 0..self.nrows {
            row_buf.clear();
            for &k in &order[counts[row]..counts[row + 1]] {
                row_buf.push((self.cols[k], self.vals[k]));
            }
            row_buf.sort_unstable_by_key(|(c, _)| *c);
            let mut iter = row_buf.iter().copied().peekable();
            while let Some((c, mut v)) = iter.next() {
                while let Some(&(c2, v2)) = iter.peek() {
                    if c2 == c {
                        v += v2;
                        iter.next();
                    } else {
                        break;
                    }
                }
                if v != 0.0 {
                    indices.push(c);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_parts(self.nrows, self.ncols, indptr, indices, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_csr_from_unsorted_triplets() {
        let mut b = CooBuilder::new(3, 3);
        b.push(2, 1, 0.8).unwrap();
        b.push(0, 2, 1.0).unwrap();
        b.push(1, 0, 0.6).unwrap();
        b.push(1, 2, 0.4).unwrap();
        b.push(2, 2, 0.2).unwrap();
        let m = b.build();
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 2), 1.0);
        assert_eq!(m.get(1, 0), 0.6);
        assert_eq!(m.get(2, 1), 0.8);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn duplicates_are_summed_and_cancellations_dropped() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 0.5).unwrap();
        b.push(0, 0, 0.25).unwrap();
        b.push(1, 1, 1.0).unwrap();
        b.push(1, 1, -1.0).unwrap();
        let m = b.build();
        assert_eq!(m.get(0, 0), 0.75);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn zero_values_are_ignored() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 0.0).unwrap();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn bounds_are_checked() {
        let mut b = CooBuilder::new(2, 3);
        assert!(b.push(2, 0, 1.0).is_err());
        assert!(b.push(0, 3, 1.0).is_err());
        assert_eq!(b.shape(), (2, 3));
    }

    #[test]
    fn empty_builder_yields_empty_matrix() {
        let m = CooBuilder::new(4, 4).build();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.shape(), (4, 4));
    }
}
