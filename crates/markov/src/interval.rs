//! Interval Markov chains for cluster-level pruning (Section V-C).
//!
//! When objects follow *different* transition matrices, the query-based
//! approach would need one backward pass per object. The paper proposes
//! clustering objects with similar chains and representing each cluster by
//! an **approximated Markov chain whose entries are probability intervals**.
//! Propagating interval bounds backward yields, for every start state, a
//! lower and upper bound on the probability of satisfying the query
//! predicate — enough to accept or reject whole clusters against a
//! probability threshold without touching their member objects.

use crate::csr::CsrMatrix;
use crate::dense::DenseVector;
use crate::error::{MarkovError, Result};
use crate::mask::StateMask;

/// An element-wise interval envelope `[lo, hi]` over a set of transition
/// matrices of identical dimension.
#[derive(Debug, Clone)]
pub struct IntervalMatrix {
    lo: CsrMatrix,
    hi: CsrMatrix,
}

impl IntervalMatrix {
    /// Builds the envelope of `matrices`: for every entry `(i, j)`,
    /// `lo(i,j) = min_k M_k(i,j)` and `hi(i,j) = max_k M_k(i,j)` (with the
    /// min taken over *all* matrices, so an entry missing from any matrix
    /// forces `lo = 0`).
    pub fn envelope(matrices: &[&CsrMatrix]) -> Result<IntervalMatrix> {
        let first = matrices.first().ok_or(MarkovError::Empty { what: "matrix set" })?;
        let shape = first.shape();
        for m in matrices {
            if m.shape() != shape {
                return Err(MarkovError::DimensionMismatch {
                    op: "interval envelope",
                    expected: shape.0,
                    found: m.shape().0,
                });
            }
        }
        let (nrows, ncols) = shape;
        let mut lo = crate::coo::CooBuilder::new(nrows, ncols);
        let mut hi = crate::coo::CooBuilder::new(nrows, ncols);
        // Merge row-wise across all matrices.
        let mut row_hi: Vec<f64> = vec![0.0; ncols];
        let mut row_lo: Vec<f64> = vec![f64::INFINITY; ncols];
        let mut touched: Vec<u32> = Vec::new();
        let mut seen_count: Vec<u32> = vec![0; ncols];
        for i in 0..nrows {
            touched.clear();
            for m in matrices {
                let (cols, vals) = m.row(i);
                for (&c, &v) in cols.iter().zip(vals) {
                    let ci = c as usize;
                    if seen_count[ci] == 0 {
                        touched.push(c);
                    }
                    seen_count[ci] += 1;
                    row_hi[ci] = row_hi[ci].max(v);
                    row_lo[ci] = row_lo[ci].min(v);
                }
            }
            for &c in &touched {
                let ci = c as usize;
                let lo_val = if (seen_count[ci] as usize) < matrices.len() {
                    0.0 // at least one matrix lacks the entry entirely
                } else {
                    row_lo[ci]
                };
                if lo_val > 0.0 {
                    lo.push(i, ci, lo_val)?;
                }
                hi.push(i, ci, row_hi[ci])?;
                row_hi[ci] = 0.0;
                row_lo[ci] = f64::INFINITY;
                seen_count[ci] = 0;
            }
        }
        Ok(IntervalMatrix { lo: lo.build(), hi: hi.build() })
    }

    /// Number of states.
    pub fn dim(&self) -> usize {
        self.lo.nrows()
    }

    /// Lower-bound matrix.
    pub fn lower(&self) -> &CsrMatrix {
        &self.lo
    }

    /// Upper-bound matrix.
    pub fn upper(&self) -> &CsrMatrix {
        &self.hi
    }

    /// Backward-propagates PST∃Q satisfaction bounds from `t_end` down to
    /// `t = 0`, mirroring the query-based recurrence:
    ///
    /// `h_t(s) = Σ_{j∈S▫} M(s,j) + Σ_{j∉S▫} M(s,j) · h_{t+1}(j)` when
    /// `t+1 ∈ T▫`, else `h_t(s) = Σ_j M(s,j) · h_{t+1}(j)`,
    ///
    /// evaluated once with the `hi` matrix (clamped to 1) for upper bounds
    /// and once with `lo` for lower bounds. `in_window(t)` reports whether
    /// `t ∈ T▫`; hits at `t = 0` must be handled by the caller (as in the
    /// exact engines).
    pub fn backward_exists_bounds(
        &self,
        window: &StateMask,
        t_end: u32,
        in_window: impl Fn(u32) -> bool,
    ) -> Result<(DenseVector, DenseVector)> {
        let n = self.dim();
        if window.dim() != n {
            return Err(MarkovError::DimensionMismatch {
                op: "interval backward bounds",
                expected: n,
                found: window.dim(),
            });
        }
        let mut lo_vec = vec![0.0f64; n];
        let mut hi_vec = vec![0.0f64; n];
        let mut t = t_end;
        while t > 0 {
            let target_in_window = in_window(t);
            let mut next_lo = vec![0.0f64; n];
            let mut next_hi = vec![0.0f64; n];
            for s in 0..n {
                let mut acc_lo = 0.0;
                let mut acc_hi = 0.0;
                let (lc, lv) = self.lo.row(s);
                for (&j, &p) in lc.iter().zip(lv) {
                    let j = j as usize;
                    let h = if target_in_window && window.contains(j) { 1.0 } else { lo_vec[j] };
                    acc_lo += p * h;
                }
                let (hc, hv) = self.hi.row(s);
                for (&j, &p) in hc.iter().zip(hv) {
                    let j = j as usize;
                    let h = if target_in_window && window.contains(j) { 1.0 } else { hi_vec[j] };
                    acc_hi += p * h;
                }
                next_lo[s] = acc_lo.min(1.0);
                next_hi[s] = acc_hi.min(1.0);
            }
            lo_vec = next_lo;
            hi_vec = next_hi;
            t -= 1;
        }
        Ok((DenseVector::from_vec(lo_vec), DenseVector::from_vec(hi_vec)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_matrix() -> CsrMatrix {
        CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
            .unwrap()
    }

    #[test]
    fn envelope_of_single_matrix_is_exact() {
        let m = paper_matrix();
        let env = IntervalMatrix::envelope(&[&m]).unwrap();
        assert!(env.lower().approx_eq(&m, 0.0));
        assert!(env.upper().approx_eq(&m, 0.0));
    }

    #[test]
    fn envelope_brackets_two_matrices() {
        let a = CsrMatrix::from_dense(&[vec![0.7, 0.3], vec![0.2, 0.8]]).unwrap();
        let b = CsrMatrix::from_dense(&[vec![0.5, 0.5], vec![0.0, 1.0]]).unwrap();
        let env = IntervalMatrix::envelope(&[&a, &b]).unwrap();
        assert_eq!(env.lower().get(0, 0), 0.5);
        assert_eq!(env.upper().get(0, 0), 0.7);
        // Entry (1,0) is missing from `b`, so the lower bound collapses to 0.
        assert_eq!(env.lower().get(1, 0), 0.0);
        assert_eq!(env.upper().get(1, 0), 0.2);
    }

    #[test]
    fn envelope_rejects_mismatched_shapes_and_empty_sets() {
        let a = CsrMatrix::identity(2);
        let b = CsrMatrix::identity(3);
        assert!(IntervalMatrix::envelope(&[&a, &b]).is_err());
        assert!(IntervalMatrix::envelope(&[]).is_err());
    }

    #[test]
    fn degenerate_envelope_bounds_equal_exact_backward_vector() {
        // With a single chain the interval bounds must coincide with the
        // exact QB backward vector from Example 2: (0.96, 0.864, 0.928).
        let m = paper_matrix();
        let env = IntervalMatrix::envelope(&[&m]).unwrap();
        let window = StateMask::from_indices(3, [0usize, 1]).unwrap();
        let (lo, hi) = env.backward_exists_bounds(&window, 3, |t| t == 2 || t == 3).unwrap();
        let expected = DenseVector::from_vec(vec![0.96, 0.864, 0.928]);
        assert!(lo.approx_eq(&expected, 1e-12));
        assert!(hi.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn interval_bounds_bracket_member_chains() {
        let a = paper_matrix();
        let b =
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.5, 0.0, 0.5], vec![0.0, 0.9, 0.1]])
                .unwrap();
        let window = StateMask::from_indices(3, [0usize, 1]).unwrap();
        let in_window = |t: u32| t == 2 || t == 3;
        let env = IntervalMatrix::envelope(&[&a, &b]).unwrap();
        let (lo, hi) = env.backward_exists_bounds(&window, 3, in_window).unwrap();
        for m in [&a, &b] {
            let exact_env = IntervalMatrix::envelope(&[m]).unwrap();
            let (exact, _) = exact_env.backward_exists_bounds(&window, 3, in_window).unwrap();
            for s in 0..3 {
                assert!(
                    lo.get(s) <= exact.get(s) + 1e-12 && exact.get(s) <= hi.get(s) + 1e-12,
                    "state {s}: {} ≤ {} ≤ {} violated",
                    lo.get(s),
                    exact.get(s),
                    hi.get(s)
                );
            }
        }
    }

    #[test]
    fn upper_bounds_are_clamped_to_one() {
        // Envelope of matrices whose hi rows sum above 1.
        let a = CsrMatrix::from_dense(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let b = CsrMatrix::from_dense(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let env = IntervalMatrix::envelope(&[&a, &b]).unwrap();
        let window = StateMask::from_indices(2, [0usize, 1]).unwrap();
        let (lo, hi) = env.backward_exists_bounds(&window, 2, |_| true).unwrap();
        for s in 0..2 {
            assert!(hi.get(s) <= 1.0);
            assert!(lo.get(s) >= 0.0);
        }
    }
}
