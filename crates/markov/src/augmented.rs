//! Explicit construction of the paper's augmented transition matrices.
//!
//! Section V introduces the absorbing "true hit" state ⊤ and the two derived
//! matrices
//!
//! ```text
//! M− = | M        0 |        M+ = | M'   sum(S▫) |
//!      | 0ᵀ       1 |             | 0    1       |
//! ```
//!
//! where `M'` is `M` with the columns of the query states `S▫` zeroed and
//! `sum(S▫)` collects the removed row mass, i.e. worlds entering `S▫` are
//! redirected into ⊤. Section VI doubles the state space (hit / not-hit
//! copies) so multiple observations can re-weight worlds after a hit, and
//! Section VII blows the space up by a hit-count level `k ∈ {0..|T▫|}`.
//!
//! The production engines apply these operators *virtually* (they never
//! materialize the augmented matrices; see `ust-core::engine`). The explicit
//! constructions below serve as the executable specification the engines are
//! cross-checked against, and remain practical for small state spaces.

// lint: allow-file(panicking-call-in-lib) — every `builder.push` here writes
// indices derived from the loop bounds of the matrix being built (row `i < n`,
// augmented offsets `off + i < dim`), so the bounds checks cannot fire; the
// construction is a direct transcription of the paper's block matrices and a
// Result-laden builder would bury the structure.
use crate::coo::CooBuilder;
use crate::csr::CsrMatrix;
use crate::error::Result;
use crate::mask::StateMask;

/// Index of the absorbing ⊤ state in the `exists_*` matrices.
pub fn top_index(num_states: usize) -> usize {
    num_states
}

/// Splits `M` column-wise on `window`: returns `(M − M', M')` where `M'`
/// keeps exactly the columns whose state is in `window`.
pub fn split_columns(m: &CsrMatrix, window: &StateMask) -> (CsrMatrix, CsrMatrix) {
    let (nrows, ncols) = m.shape();
    let mut outside = CooBuilder::with_capacity(nrows, ncols, m.nnz());
    let mut inside = CooBuilder::with_capacity(nrows, ncols, m.nnz());
    for i in 0..nrows {
        let (cols, vals) = m.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            let target = if window.contains(c as usize) { &mut inside } else { &mut outside };
            // push cannot fail: indices come from a valid matrix
            target.push(i, c as usize, v).expect("index within matrix bounds");
        }
    }
    (outside.build(), inside.build())
}

/// `M−` for the PST∃Q: `M` plus an absorbing ⊤ state (index `n`).
pub fn exists_minus(m: &CsrMatrix) -> CsrMatrix {
    let n = m.nrows();
    let mut builder = CooBuilder::with_capacity(n + 1, n + 1, m.nnz() + 1);
    for i in 0..n {
        let (cols, vals) = m.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            builder.push(i, c as usize, v).expect("index within bounds");
        }
    }
    builder.push(n, n, 1.0).expect("top state within bounds");
    builder.build()
}

/// `M+` for the PST∃Q: transitions entering a state of `window` are
/// redirected into the absorbing ⊤ state.
pub fn exists_plus(m: &CsrMatrix, window: &StateMask) -> CsrMatrix {
    let n = m.nrows();
    let top = top_index(n);
    let mut builder = CooBuilder::with_capacity(n + 1, n + 1, m.nnz() + 1);
    for i in 0..n {
        let (cols, vals) = m.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            if window.contains(c as usize) {
                builder.push(i, top, v).expect("index within bounds");
            } else {
                builder.push(i, c as usize, v).expect("index within bounds");
            }
        }
    }
    builder.push(top, top, 1.0).expect("top state within bounds");
    builder.build()
}

/// `M−` for the doubled state space of Section VI: block-diagonal
/// `diag(M, M)`. States `0..n` are "not yet hit", `n..2n` are "hit at s".
pub fn doubled_minus(m: &CsrMatrix) -> CsrMatrix {
    let n = m.nrows();
    let mut builder = CooBuilder::with_capacity(2 * n, 2 * n, 2 * m.nnz());
    for i in 0..n {
        let (cols, vals) = m.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            builder.push(i, c as usize, v).expect("index within bounds");
            builder.push(n + i, n + c as usize, v).expect("index within bounds");
        }
    }
    builder.build()
}

/// `M+` for the doubled state space: not-yet-hit worlds entering `window`
/// move to the *hit* copy of the entered state, preserving location identity
/// so later observations can still re-weight them:
///
/// ```text
/// M+ = | M − M'   M' |
///      | 0        M  |
/// ```
pub fn doubled_plus(m: &CsrMatrix, window: &StateMask) -> CsrMatrix {
    let n = m.nrows();
    let mut builder = CooBuilder::with_capacity(2 * n, 2 * n, 2 * m.nnz());
    for i in 0..n {
        let (cols, vals) = m.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            let c = c as usize;
            if window.contains(c) {
                builder.push(i, n + c, v).expect("index within bounds");
            } else {
                builder.push(i, c, v).expect("index within bounds");
            }
            builder.push(n + i, n + c, v).expect("index within bounds");
        }
    }
    builder.build()
}

/// `M−` for the k-times blow-up of Section VII: `levels` copies of `M` on
/// the block diagonal. State `(k, s)` is encoded as `k·n + s`.
pub fn ktimes_minus(m: &CsrMatrix, levels: usize) -> CsrMatrix {
    let n = m.nrows();
    let dim = levels * n;
    let mut builder = CooBuilder::with_capacity(dim, dim, levels * m.nnz());
    for level in 0..levels {
        let off = level * n;
        for i in 0..n {
            let (cols, vals) = m.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                builder.push(off + i, off + c as usize, v).expect("index within bounds");
            }
        }
    }
    builder.build()
}

/// `M+` for the k-times blow-up: entering `window` increments the level.
/// The top level saturates (its count can no longer grow), keeping the
/// matrix stochastic.
pub fn ktimes_plus(m: &CsrMatrix, window: &StateMask, levels: usize) -> CsrMatrix {
    let n = m.nrows();
    let dim = levels * n;
    let mut builder = CooBuilder::with_capacity(dim, dim, levels * m.nnz());
    for level in 0..levels {
        let off = level * n;
        let next_off = if level + 1 < levels { off + n } else { off };
        for i in 0..n {
            let (cols, vals) = m.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                let c = c as usize;
                if window.contains(c) {
                    builder.push(off + i, next_off + c, v).expect("index within bounds");
                } else {
                    builder.push(off + i, off + c, v).expect("index within bounds");
                }
            }
        }
    }
    builder.build()
}

/// Validates that an augmented matrix is still row-stochastic — every
/// construction in this module must preserve total probability mass.
pub fn assert_stochastic(m: &CsrMatrix) -> Result<()> {
    crate::stochastic::StochasticMatrix::new(m.clone()).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseVector;

    fn paper_matrix() -> CsrMatrix {
        CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
            .unwrap()
    }

    fn window_s1_s2() -> StateMask {
        StateMask::from_indices(3, [0usize, 1]).unwrap()
    }

    #[test]
    fn exists_matrices_match_example_1() {
        // Example 1 of the paper gives M− and M+ explicitly.
        let m = paper_matrix();
        let minus = exists_minus(&m);
        let expected_minus = CsrMatrix::from_dense(&[
            vec![0.0, 0.0, 1.0, 0.0],
            vec![0.6, 0.0, 0.4, 0.0],
            vec![0.0, 0.8, 0.2, 0.0],
            vec![0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap();
        assert!(minus.approx_eq(&expected_minus, 1e-12));

        let plus = exists_plus(&m, &window_s1_s2());
        let expected_plus = CsrMatrix::from_dense(&[
            vec![0.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.4, 0.6],
            vec![0.0, 0.0, 0.2, 0.8],
            vec![0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap();
        assert!(plus.approx_eq(&expected_plus, 1e-12));
    }

    #[test]
    fn example_1_propagation_yields_0864() {
        // Full worked example: object at s2 at t=0, S▫={s1,s2}, T▫={2,3}.
        let m = paper_matrix();
        let minus = exists_minus(&m);
        let plus = exists_plus(&m, &window_s1_s2());
        let p0 = DenseVector::from_vec(vec![0.0, 1.0, 0.0, 0.0]);
        let p1 = minus.vecmat_dense(&p0).unwrap();
        assert!(p1.approx_eq(&DenseVector::from_vec(vec![0.6, 0.0, 0.4, 0.0]), 1e-12));
        // Note: the paper's Example 1 prints the intermediate vector as
        // (0, 0, 0.64, 0.36), which contradicts its own Section V-A
        // narrative (hit mass 0.32 at t=2, remainder 0.68 at s3) *and* its
        // final vector (0, 0, 0.136, 0.864). The value below is the one
        // consistent with both: 0.4·0.8 = 0.32 hit, 0.6·1 + 0.4·0.2 = 0.68.
        let p2 = plus.vecmat_dense(&p1).unwrap();
        assert!(p2.approx_eq(&DenseVector::from_vec(vec![0.0, 0.0, 0.68, 0.32]), 1e-12));
        let p3 = plus.vecmat_dense(&p2).unwrap();
        assert!(p3.approx_eq(&DenseVector::from_vec(vec![0.0, 0.0, 0.136, 0.864]), 1e-12));
    }

    #[test]
    fn example_2_transposed_backward_pass() {
        // Query-based Example 2: backward vector P(t=0) = (0.96, 0.864, 0.928, 1).
        let m = paper_matrix();
        let minus_t = exists_minus(&m).transpose();
        let plus_t = exists_plus(&m, &window_s1_s2()).transpose();
        let p3 = DenseVector::from_vec(vec![0.0, 0.0, 0.0, 1.0]);
        let p2 = plus_t.vecmat_dense(&p3).unwrap();
        assert!(p2.approx_eq(&DenseVector::from_vec(vec![0.0, 0.6, 0.8, 1.0]), 1e-12));
        let p1 = plus_t.vecmat_dense(&p2).unwrap();
        assert!(p1.approx_eq(&DenseVector::from_vec(vec![0.8, 0.92, 0.96, 1.0]), 1e-12));
        let p0 = minus_t.vecmat_dense(&p1).unwrap();
        assert!(p0.approx_eq(&DenseVector::from_vec(vec![0.96, 0.864, 0.928, 1.0]), 1e-12));
        // Dotting with the initial distribution (object at s2) gives 0.864.
        let init = DenseVector::from_vec(vec![0.0, 1.0, 0.0, 0.0]);
        assert!((init.dot(&p0).unwrap() - 0.864).abs() < 1e-12);
    }

    #[test]
    fn augmented_matrices_stay_stochastic() {
        let m = paper_matrix();
        let w = window_s1_s2();
        assert_stochastic(&exists_minus(&m)).unwrap();
        assert_stochastic(&exists_plus(&m, &w)).unwrap();
        assert_stochastic(&doubled_minus(&m)).unwrap();
        assert_stochastic(&doubled_plus(&m, &w)).unwrap();
        assert_stochastic(&ktimes_minus(&m, 4)).unwrap();
        assert_stochastic(&ktimes_plus(&m, &w, 4)).unwrap();
    }

    #[test]
    fn doubled_matrices_match_section_6_example() {
        // Section VI uses M with row 2 = (0.5, 0, 0.5) and window {s2} at
        // positions: S▫ = {s2} (the middle state), giving the 6×6 matrices
        // printed in the paper.
        let m =
            CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.5, 0.0, 0.5], vec![0.0, 0.8, 0.2]])
                .unwrap();
        let w = StateMask::from_indices(3, [1usize]).unwrap();
        let minus = doubled_minus(&m);
        let expected_minus = CsrMatrix::from_dense(&[
            vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            vec![0.5, 0.0, 0.5, 0.0, 0.0, 0.0],
            vec![0.0, 0.8, 0.2, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.0, 1.0],
            vec![0.0, 0.0, 0.0, 0.5, 0.0, 0.5],
            vec![0.0, 0.0, 0.0, 0.0, 0.8, 0.2],
        ])
        .unwrap();
        assert!(minus.approx_eq(&expected_minus, 1e-12));

        let plus = doubled_plus(&m, &w);
        let expected_plus = CsrMatrix::from_dense(&[
            vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            vec![0.5, 0.0, 0.5, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.2, 0.0, 0.8, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.0, 1.0],
            vec![0.0, 0.0, 0.0, 0.5, 0.0, 0.5],
            vec![0.0, 0.0, 0.0, 0.0, 0.8, 0.2],
        ])
        .unwrap();
        assert!(plus.approx_eq(&expected_plus, 1e-12));
    }

    #[test]
    fn split_columns_partitions_mass() {
        let m = paper_matrix();
        let (outside, inside) = split_columns(&m, &window_s1_s2());
        assert_eq!(outside.nnz() + inside.nnz(), m.nnz());
        for i in 0..3 {
            for j in 0..3 {
                assert!((outside.get(i, j) + inside.get(i, j) - m.get(i, j)).abs() < 1e-12);
            }
        }
        assert_eq!(inside.get(1, 0), 0.6); // column 0 is in the window
        assert_eq!(outside.get(1, 0), 0.0);
    }

    #[test]
    fn ktimes_plus_increments_level_on_window_entry() {
        let m = paper_matrix();
        let w = window_s1_s2();
        let plus = ktimes_plus(&m, &w, 3);
        // From level 0 state s2 (row 1): 0.6 goes to level-1 s1 (col 3+0),
        // 0.4 stays level 0 at s3 (col 2).
        assert_eq!(plus.get(1, 3), 0.6);
        assert_eq!(plus.get(1, 2), 0.4);
        // Top level saturates: level-2 s2 (row 7) sends 0.6 to level-2 s1.
        assert_eq!(plus.get(7, 6), 0.6);
    }

    #[test]
    fn ktimes_minus_is_block_diagonal() {
        let m = paper_matrix();
        let minus = ktimes_minus(&m, 2);
        assert_eq!(minus.shape(), (6, 6));
        assert_eq!(minus.get(0, 2), 1.0);
        assert_eq!(minus.get(3, 5), 1.0);
        assert_eq!(minus.get(0, 5), 0.0);
    }

    #[test]
    fn top_index_is_last() {
        assert_eq!(top_index(3), 3);
    }
}
