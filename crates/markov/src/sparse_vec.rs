//! Sparse probability/weight vectors.
//!
//! Object location distributions start extremely sparse — the paper's
//! `object_spread` parameter defaults to 5 possible start states out of
//! 100,000 — and only densify as the Markov chain mixes. A coordinate-sorted
//! sparse vector keeps per-transition cost proportional to the *reachable*
//! state count `|S_reach|` rather than `|S|`, which is exactly the cost model
//! analysed in Section V-C of the paper.

use crate::dense::DenseVector;
use crate::error::{MarkovError, Result};
use crate::mask::StateMask;

/// A sparse `f64` vector: strictly ascending indices with matching values.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVector {
    dim: usize,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVector {
    /// An empty (all-zero) vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        SparseVector { dim, indices: Vec::new(), values: Vec::new() }
    }

    /// A one-hot vector with `1.0` at `index`.
    pub fn unit(dim: usize, index: usize) -> Result<Self> {
        if index >= dim {
            return Err(MarkovError::IndexOutOfBounds { index, dim });
        }
        Ok(SparseVector { dim, indices: vec![index as u32], values: vec![1.0] })
    }

    /// Builds from `(index, value)` pairs; duplicate indices are summed and
    /// zero entries dropped.
    pub fn from_pairs<I>(dim: usize, pairs: I) -> Result<Self>
    where
        I: IntoIterator<Item = (usize, f64)>,
    {
        let mut entries: Vec<(usize, f64)> = pairs.into_iter().collect();
        for &(index, _) in &entries {
            if index >= dim {
                return Err(MarkovError::IndexOutOfBounds { index, dim });
            }
        }
        entries.sort_unstable_by_key(|(i, _)| *i);
        let mut indices = Vec::with_capacity(entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            if let (Some(last_i), Some(last_v)) = (indices.last(), values.last_mut()) {
                if *last_i == i as u32 {
                    *last_v += v;
                    continue;
                }
            }
            indices.push(i as u32);
            values.push(v);
        }
        let mut out = SparseVector { dim, indices, values };
        out.retain_nonzero();
        Ok(out)
    }

    /// Assembles a vector from parts the caller guarantees are already
    /// strictly ascending, in range and free of explicit zeros — the
    /// allocation-free construction used by the batched kernels, whose
    /// gather pass establishes exactly these invariants.
    pub(crate) fn from_sorted_parts(dim: usize, indices: Vec<u32>, values: Vec<f64>) -> Self {
        debug_assert_eq!(indices.len(), values.len());
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]), "indices strictly ascending");
        debug_assert!(indices.last().is_none_or(|&i| (i as usize) < dim), "indices in range");
        debug_assert!(values.iter().all(|v| *v != 0.0), "no explicit zeros");
        SparseVector { dim, indices, values }
    }

    /// Consumes the vector, returning its `(indices, values)` storage so
    /// the batched kernels can recycle the buffers through their pools.
    pub(crate) fn into_parts(self) -> (Vec<u32>, Vec<f64>) {
        (self.indices, self.values)
    }

    /// Converts a dense vector, keeping entries with `|v| > threshold`.
    pub fn from_dense(dense: &DenseVector, threshold: f64) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, v) in dense.as_slice().iter().enumerate() {
            if v.abs() > threshold {
                indices.push(i as u32);
                values.push(*v);
            }
        }
        SparseVector { dim: dense.dim(), indices, values }
    }

    /// Expands to a dense vector.
    pub fn to_dense(&self) -> DenseVector {
        let mut out = DenseVector::zeros(self.dim);
        for (i, v) in self.iter() {
            out.as_mut_slice()[i] = v;
        }
        out
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Fraction of entries that are non-zero; drives hybrid representation
    /// switching in the propagation engine.
    pub fn density(&self) -> f64 {
        if self.dim == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.dim as f64
        }
    }

    /// Value at `index` via binary search (0.0 when absent).
    pub fn get(&self, index: usize) -> f64 {
        match self.indices.binary_search(&(index as u32)) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates `(index, value)` pairs in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.indices.iter().zip(self.values.iter()).map(|(i, v)| (*i as usize, *v))
    }

    /// Stored indices (ascending).
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Stored values, parallel to [`Self::indices`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sum of entries.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// L1 norm.
    pub fn l1_norm(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).sum()
    }

    /// Scales all entries.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.values {
            *v *= factor;
        }
    }

    /// Normalizes entries to sum to 1.
    pub fn normalize(&mut self) -> Result<()> {
        let total = self.sum();
        if total <= 0.0 || !total.is_finite() {
            return Err(MarkovError::ZeroMass);
        }
        self.scale(1.0 / total);
        Ok(())
    }

    /// Drops entries with `|v| <= threshold` (ε-pruning). Returns the total
    /// absolute mass dropped so callers can bound the introduced error.
    pub fn prune(&mut self, threshold: f64) -> f64 {
        let mut dropped = 0.0;
        let mut keep_i = Vec::with_capacity(self.indices.len());
        let mut keep_v = Vec::with_capacity(self.values.len());
        for (i, v) in self.indices.iter().zip(self.values.iter()) {
            if v.abs() > threshold {
                keep_i.push(*i);
                keep_v.push(*v);
            } else {
                dropped += v.abs();
            }
        }
        self.indices = keep_i;
        self.values = keep_v;
        dropped
    }

    fn retain_nonzero(&mut self) {
        self.prune(0.0);
    }

    /// Dot product with a dense vector.
    pub fn dot_dense(&self, dense: &DenseVector) -> Result<f64> {
        if self.dim != dense.dim() {
            return Err(MarkovError::DimensionMismatch {
                op: "sparse·dense dot product",
                expected: self.dim,
                found: dense.dim(),
            });
        }
        let slice = dense.as_slice();
        Ok(self.iter().map(|(i, v)| v * slice[i]).sum())
    }

    /// Dot product with another sparse vector (merge join on indices).
    pub fn dot_sparse(&self, other: &SparseVector) -> Result<f64> {
        if self.dim != other.dim {
            return Err(MarkovError::DimensionMismatch {
                op: "sparse·sparse dot product",
                expected: self.dim,
                found: other.dim,
            });
        }
        let mut total = 0.0;
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.indices.len() && b < other.indices.len() {
            match self.indices[a].cmp(&other.indices[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    total += self.values[a] * other.values[b];
                    a += 1;
                    b += 1;
                }
            }
        }
        Ok(total)
    }

    /// Element-wise (Hadamard) product with another sparse vector.
    pub fn hadamard(&self, other: &SparseVector) -> Result<SparseVector> {
        if self.dim != other.dim {
            return Err(MarkovError::DimensionMismatch {
                op: "sparse hadamard",
                expected: self.dim,
                found: other.dim,
            });
        }
        let mut indices = Vec::new();
        let mut values = Vec::new();
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.indices.len() && b < other.indices.len() {
            match self.indices[a].cmp(&other.indices[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    let v = self.values[a] * other.values[b];
                    if v != 0.0 {
                        indices.push(self.indices[a]);
                        values.push(v);
                    }
                    a += 1;
                    b += 1;
                }
            }
        }
        Ok(SparseVector { dim: self.dim, indices, values })
    }

    /// `self + other`.
    pub fn add(&self, other: &SparseVector) -> Result<SparseVector> {
        if self.dim != other.dim {
            return Err(MarkovError::DimensionMismatch {
                op: "sparse add",
                expected: self.dim,
                found: other.dim,
            });
        }
        let mut indices = Vec::with_capacity(self.nnz() + other.nnz());
        let mut values = Vec::with_capacity(self.nnz() + other.nnz());
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.indices.len() || b < other.indices.len() {
            let ai = self.indices.get(a).copied().unwrap_or(u32::MAX);
            let bi = other.indices.get(b).copied().unwrap_or(u32::MAX);
            match ai.cmp(&bi) {
                std::cmp::Ordering::Less => {
                    indices.push(ai);
                    values.push(self.values[a]);
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    indices.push(bi);
                    values.push(other.values[b]);
                    b += 1;
                }
                std::cmp::Ordering::Equal => {
                    let v = self.values[a] + other.values[b];
                    if v != 0.0 {
                        indices.push(ai);
                        values.push(v);
                    }
                    a += 1;
                    b += 1;
                }
            }
        }
        Ok(SparseVector { dim: self.dim, indices, values })
    }

    /// Sums entries whose state is in `mask`.
    pub fn masked_sum(&self, mask: &StateMask) -> f64 {
        self.iter().filter(|(i, _)| mask.contains(*i)).map(|(_, v)| v).sum()
    }

    /// Removes the entries of states in `mask`, returning them as their own
    /// sparse vector. Used by the k-times `C(t)` shift: the mass extracted
    /// from count-level `k` is re-inserted at level `k + 1`.
    pub fn split_masked(&mut self, mask: &StateMask) -> SparseVector {
        let mut out_i = Vec::new();
        let mut out_v = Vec::new();
        let mut keep_i = Vec::with_capacity(self.indices.len());
        let mut keep_v = Vec::with_capacity(self.values.len());
        for (i, v) in self.indices.iter().zip(self.values.iter()) {
            if mask.contains(*i as usize) {
                out_i.push(*i);
                out_v.push(*v);
            } else {
                keep_i.push(*i);
                keep_v.push(*v);
            }
        }
        self.indices = keep_i;
        self.values = keep_v;
        SparseVector { dim: self.dim, indices: out_i, values: out_v }
    }

    /// Removes (returns and zeroes) the mass of states in `mask`; the
    /// sparse-side implementation of the `M+` redirect-to-⊤ step.
    pub fn extract_masked(&mut self, mask: &StateMask) -> f64 {
        let mut moved = 0.0;
        let mut keep_i = Vec::with_capacity(self.indices.len());
        let mut keep_v = Vec::with_capacity(self.values.len());
        for (i, v) in self.indices.iter().zip(self.values.iter()) {
            if mask.contains(*i as usize) {
                moved += *v;
            } else {
                keep_i.push(*i);
                keep_v.push(*v);
            }
        }
        self.indices = keep_i;
        self.values = keep_v;
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_dedups_and_drops_zeros() {
        let v = SparseVector::from_pairs(10, [(7, 0.5), (2, 0.25), (7, 0.25), (3, 0.0)]).unwrap();
        assert_eq!(v.indices(), &[2, 7]);
        assert_eq!(v.values(), &[0.25, 0.75]);
        assert_eq!(v.nnz(), 2);
        assert!(SparseVector::from_pairs(3, [(3, 1.0)]).is_err());
    }

    #[test]
    fn dense_roundtrip() {
        let d = DenseVector::from_vec(vec![0.0, 0.5, 0.0, 0.5]);
        let s = SparseVector::from_dense(&d, 0.0);
        assert_eq!(s.nnz(), 2);
        assert!(s.to_dense().approx_eq(&d, 0.0));
    }

    #[test]
    fn get_uses_binary_search() {
        let v = SparseVector::from_pairs(100, [(10, 0.1), (50, 0.9)]).unwrap();
        assert_eq!(v.get(10), 0.1);
        assert_eq!(v.get(50), 0.9);
        assert_eq!(v.get(11), 0.0);
    }

    #[test]
    fn dot_products_agree_with_dense() {
        let a = SparseVector::from_pairs(6, [(0, 1.0), (3, 2.0), (5, 3.0)]).unwrap();
        let b = SparseVector::from_pairs(6, [(3, 0.5), (4, 9.0), (5, 1.0)]).unwrap();
        let expected = a.to_dense().dot(&b.to_dense()).unwrap();
        assert!((a.dot_sparse(&b).unwrap() - expected).abs() < 1e-12);
        assert!((a.dot_dense(&b.to_dense()).unwrap() - expected).abs() < 1e-12);
        let c = SparseVector::zeros(5);
        assert!(a.dot_sparse(&c).is_err());
        assert!(a.dot_dense(&DenseVector::zeros(5)).is_err());
    }

    #[test]
    fn add_merges_indices() {
        let a = SparseVector::from_pairs(6, [(0, 1.0), (3, 2.0)]).unwrap();
        let b = SparseVector::from_pairs(6, [(3, -2.0), (5, 1.0)]).unwrap();
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.indices(), &[0, 5]); // the 3-entry cancelled exactly
        assert!(a.add(&SparseVector::zeros(2)).is_err());
    }

    #[test]
    fn hadamard_keeps_shared_support() {
        let a = SparseVector::from_pairs(6, [(1, 0.5), (2, 0.5)]).unwrap();
        let b = SparseVector::from_pairs(6, [(2, 0.4), (3, 0.6)]).unwrap();
        let h = a.hadamard(&b).unwrap();
        assert_eq!(h.indices(), &[2]);
        assert!((h.values()[0] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn prune_reports_dropped_mass() {
        let mut v = SparseVector::from_pairs(5, [(0, 1e-9), (1, 0.5), (2, -1e-9)]).unwrap();
        let dropped = v.prune(1e-6);
        assert!((dropped - 2e-9).abs() < 1e-15);
        assert_eq!(v.nnz(), 1);
    }

    #[test]
    fn normalize_and_zero_mass() {
        let mut v = SparseVector::from_pairs(4, [(1, 2.0), (2, 2.0)]).unwrap();
        v.normalize().unwrap();
        assert!((v.sum() - 1.0).abs() < 1e-12);
        let mut z = SparseVector::zeros(4);
        assert_eq!(z.normalize(), Err(MarkovError::ZeroMass));
    }

    #[test]
    fn masked_extract_moves_mass() {
        let mut v = SparseVector::from_pairs(8, [(1, 0.3), (4, 0.2), (6, 0.5)]).unwrap();
        let mask = StateMask::from_indices(8, [4usize, 6]).unwrap();
        assert!((v.masked_sum(&mask) - 0.7).abs() < 1e-12);
        let moved = v.extract_masked(&mask);
        assert!((moved - 0.7).abs() < 1e-12);
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.get(1), 0.3);
    }

    #[test]
    fn density_reflects_fill() {
        let v = SparseVector::from_pairs(10, [(0, 1.0), (1, 1.0)]).unwrap();
        assert!((v.density() - 0.2).abs() < 1e-12);
        assert_eq!(SparseVector::zeros(0).density(), 0.0);
    }
}
