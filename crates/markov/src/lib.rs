//! # ust-markov — Markov-chain and sparse linear-algebra substrate
//!
//! This crate is the computational substrate of the reproduction of
//! *Querying Uncertain Spatio-Temporal Data* (Emrich, Kriegel, Mamoulis,
//! Renz, Züfle — ICDE 2012). The paper models uncertain trajectories as
//! realizations of a first-order homogeneous Markov chain and reduces every
//! probabilistic spatio-temporal query to products with (augmented)
//! transition matrices; the original artifact delegated those products to
//! MATLAB. This crate replaces that dependency with purpose-built sparse
//! kernels:
//!
//! * [`csr::CsrMatrix`] — compressed sparse row matrices with the
//!   vector–matrix, matrix–matrix and transpose kernels used by every query;
//! * [`sparse_vec::SparseVector`] / [`dense::DenseVector`] — the two
//!   distribution representations, with [`hybrid::PropagationVector`]
//!   switching adaptively between them during propagation;
//! * [`stochastic::StochasticMatrix`] / [`chain::MarkovChain`] — validated
//!   transition matrices and chains (Definitions 5/6, Corollaries 1/2);
//! * [`augmented`] — the paper's `M−`/`M+` constructions with the absorbing
//!   ⊤ state (Section V), the doubled state space for multiple observations
//!   (Section VI) and the k-times blow-up (Section VII), kept as executable
//!   specifications the fast engines are cross-checked against;
//! * [`kernels`] — the cache-blocked, SIMD-friendly batched propagation
//!   kernels (dense panels, sparse k-way merge) and the [`KernelMode`]
//!   selection policy behind `CsrMatrix::step_batch`;
//! * [`interval::IntervalMatrix`] — interval Markov chains for the
//!   cluster-level pruning sketched in Section V-C;
//! * [`mask::StateMask`] — bitset state sets for query windows.

#![deny(missing_docs)]
// The workspace denies `unsafe_code`; this crate opts back in for the
// fixed-width SIMD propagation kernels (`kernels`), where every block
// carries a clippy-enforced safety comment.
#![allow(unsafe_code)]
pub mod augmented;
pub mod chain;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod hybrid;
pub mod interval;
pub mod kernels;
pub mod mask;
pub mod power;
pub mod sparse_vec;
pub mod stochastic;
pub mod testutil;

pub use chain::MarkovChain;
pub use coo::CooBuilder;
pub use csr::{CsrMatrix, SpmvScratch};
pub use dense::DenseVector;
pub use error::{MarkovError, Result};
pub use hybrid::{BatchStepStats, PropagationVector};
pub use interval::IntervalMatrix;
pub use kernels::KernelMode;
pub use mask::StateMask;
pub use power::PowerCache;
pub use sparse_vec::SparseVector;
pub use stochastic::StochasticMatrix;
