//! Error types for the linear-algebra and Markov-chain substrate.

use std::fmt;

/// Errors raised by matrix/vector construction and Markov-chain validation.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// An index is out of range for the given dimension.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The dimension it was checked against.
        dim: usize,
    },
    /// A matrix row violates row-stochasticity (sum ≉ 1 or negative entry).
    NotStochastic {
        /// Row that failed validation.
        row: usize,
        /// The row sum that was observed.
        sum: f64,
    },
    /// A value that must be a probability lies outside `[0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// A vector that must carry probability mass has zero (or negative) mass,
    /// e.g. after conditioning on contradictory observations.
    ZeroMass,
    /// An operation requires a non-empty structure but got an empty one.
    Empty {
        /// What was empty.
        what: &'static str,
    },
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::DimensionMismatch { op, expected, found } => {
                write!(f, "dimension mismatch in {op}: expected {expected}, found {found}")
            }
            MarkovError::IndexOutOfBounds { index, dim } => {
                write!(f, "index {index} out of bounds for dimension {dim}")
            }
            MarkovError::NotStochastic { row, sum } => {
                write!(f, "row {row} is not stochastic (sum = {sum})")
            }
            MarkovError::InvalidProbability { value } => {
                write!(f, "value {value} is not a probability in [0, 1]")
            }
            MarkovError::ZeroMass => write!(f, "probability vector has zero total mass"),
            MarkovError::Empty { what } => write!(f, "{what} must not be empty"),
        }
    }
}

impl std::error::Error for MarkovError {}

/// Convenience alias used across the substrate.
pub type Result<T> = std::result::Result<T, MarkovError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MarkovError::DimensionMismatch { op: "dot", expected: 3, found: 4 };
        assert!(e.to_string().contains("dot"));
        assert!(e.to_string().contains('3'));
        let e = MarkovError::NotStochastic { row: 7, sum: 0.5 };
        assert!(e.to_string().contains('7'));
        let e = MarkovError::IndexOutOfBounds { index: 9, dim: 3 };
        assert!(e.to_string().contains('9'));
        let e = MarkovError::InvalidProbability { value: 1.5 };
        assert!(e.to_string().contains("1.5"));
        assert!(MarkovError::ZeroMass.to_string().contains("zero"));
        let e = MarkovError::Empty { what: "state set" };
        assert!(e.to_string().contains("state set"));
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let e = MarkovError::ZeroMass;
        assert_eq!(e.clone(), e);
        assert_ne!(e, MarkovError::Empty { what: "x" });
    }
}
