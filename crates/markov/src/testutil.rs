//! Shared test utilities: random chains and distributions.
//!
//! Exposed as a public module so downstream crates (`ust-core`'s
//! cross-engine consistency suites, the benchmark harness) can generate the
//! same families of random-but-reproducible chains. Not intended for
//! production use.

// lint: allow-file(panicking-call-in-lib) — deterministic test-fixture
// generators: indices come from `0..n` loops and weights are strictly
// positive by construction. Not a production code path (see module docs).
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::chain::MarkovChain;
use crate::coo::CooBuilder;
use crate::csr::CsrMatrix;
use crate::sparse_vec::SparseVector;

/// Asserts two floats are within `tol` of each other, with a useful message.
#[track_caller]
pub fn assert_close(a: f64, b: f64, tol: f64) {
    assert!((a - b).abs() <= tol, "values differ: {a} vs {b} (|Δ| = {} > {tol})", (a - b).abs());
}

/// A deterministic RNG for a given seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A random row-stochastic matrix where every state reaches `out_degree`
/// uniformly chosen successors with Dirichlet-ish random weights.
pub fn random_stochastic(rng: &mut StdRng, n: usize, out_degree: usize) -> CsrMatrix {
    let out_degree = out_degree.clamp(1, n);
    let mut builder = CooBuilder::with_capacity(n, n, n * out_degree);
    let mut weights: Vec<f64> = Vec::with_capacity(out_degree);
    for i in 0..n {
        // Sample distinct successors.
        let mut succ: Vec<usize> = Vec::with_capacity(out_degree);
        while succ.len() < out_degree {
            let c = rng.random_range(0..n);
            if !succ.contains(&c) {
                succ.push(c);
            }
        }
        weights.clear();
        let mut total = 0.0;
        for _ in 0..out_degree {
            let w: f64 = rng.random::<f64>() + 1e-3;
            weights.push(w);
            total += w;
        }
        for (c, w) in succ.iter().zip(&weights) {
            builder.push(i, *c, w / total).expect("indices in range");
        }
    }
    builder.build()
}

/// A random *banded* stochastic matrix mimicking the paper's synthetic
/// generator: from state `s_i` only states within `±max_step/2` are
/// reachable and at most `state_spread` of them are successors.
pub fn random_banded_stochastic(
    rng: &mut StdRng,
    n: usize,
    state_spread: usize,
    max_step: usize,
) -> CsrMatrix {
    let mut builder = CooBuilder::new(n, n);
    let half = (max_step / 2).max(1);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half).min(n - 1);
        let window = hi - lo + 1;
        let k = state_spread.clamp(1, window);
        let mut succ: Vec<usize> = Vec::with_capacity(k);
        while succ.len() < k {
            let c = lo + rng.random_range(0..window);
            if !succ.contains(&c) {
                succ.push(c);
            }
        }
        let mut weights: Vec<f64> = (0..k).map(|_| rng.random::<f64>() + 1e-3).collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        for (c, w) in succ.iter().zip(&weights) {
            builder.push(i, *c, *w).expect("indices in range");
        }
    }
    builder.build()
}

/// A random Markov chain (validated).
pub fn random_chain(seed: u64, n: usize, out_degree: usize) -> MarkovChain {
    let mut r = rng(seed);
    MarkovChain::from_csr(random_stochastic(&mut r, n, out_degree))
        .expect("generator produces stochastic rows")
}

/// A random sparse distribution over `spread` distinct states.
pub fn random_distribution(rng: &mut StdRng, n: usize, spread: usize) -> SparseVector {
    let spread = spread.clamp(1, n);
    let mut states: Vec<usize> = Vec::with_capacity(spread);
    while states.len() < spread {
        let s = rng.random_range(0..n);
        if !states.contains(&s) {
            states.push(s);
        }
    }
    let mut weights: Vec<f64> = (0..spread).map(|_| rng.random::<f64>() + 1e-3).collect();
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    SparseVector::from_pairs(n, states.into_iter().zip(weights)).expect("states in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stochastic::StochasticMatrix;

    #[test]
    fn random_stochastic_is_valid() {
        let mut r = rng(42);
        for n in [1usize, 3, 17, 64] {
            let m = random_stochastic(&mut r, n, 4);
            StochasticMatrix::new(m).expect("rows must be stochastic");
        }
    }

    #[test]
    fn random_banded_respects_band() {
        let mut r = rng(7);
        let n = 50;
        let max_step = 10;
        let m = random_banded_stochastic(&mut r, n, 3, max_step);
        StochasticMatrix::new(m.clone()).expect("stochastic");
        for i in 0..n {
            let (cols, _) = m.row(i);
            for &c in cols {
                let d = (c as i64 - i as i64).abs();
                assert!(d <= (max_step / 2) as i64, "row {i} reaches {c}");
            }
        }
    }

    #[test]
    fn random_distribution_is_normalized() {
        let mut r = rng(9);
        let d = random_distribution(&mut r, 100, 5);
        assert_eq!(d.nnz(), 5);
        assert_close(d.sum(), 1.0, 1e-12);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = random_chain(5, 20, 3);
        let b = random_chain(5, 20, 3);
        assert!(a.matrix().approx_eq(b.matrix(), 0.0));
    }

    #[test]
    #[should_panic(expected = "values differ")]
    fn assert_close_panics_on_mismatch() {
        assert_close(1.0, 2.0, 1e-9);
    }
}
