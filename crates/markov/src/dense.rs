//! Dense probability/weight vectors.
//!
//! A [`DenseVector`] is a thin, owned wrapper around `Vec<f64>` providing the
//! handful of numerically careful operations the query engines need:
//! L1 normalization, dot products, masked mass extraction and element-wise
//! products (used for Bayesian observation fusion, Lemma 1 of the paper).

use crate::error::{MarkovError, Result};
use crate::mask::StateMask;

/// An owned dense `f64` vector indexed by state id.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseVector {
    values: Vec<f64>,
}

impl DenseVector {
    /// Creates a zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        DenseVector { values: vec![0.0; dim] }
    }

    /// Wraps an existing `Vec<f64>`.
    pub fn from_vec(values: Vec<f64>) -> Self {
        DenseVector { values }
    }

    /// A unit (one-hot) vector with `1.0` at `index`.
    pub fn unit(dim: usize, index: usize) -> Result<Self> {
        if index >= dim {
            return Err(MarkovError::IndexOutOfBounds { index, dim });
        }
        let mut v = Self::zeros(dim);
        v.values[index] = 1.0;
        Ok(v)
    }

    /// The uniform distribution over `dim` states.
    pub fn uniform(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(MarkovError::Empty { what: "dimension" });
        }
        Ok(DenseVector { values: vec![1.0 / dim as f64; dim] })
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Immutable view of the underlying values.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Mutable view of the underlying values.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the vector, returning the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.values
    }

    /// Value at `index` (0.0 if out of range, mirroring sparse semantics).
    pub fn get(&self, index: usize) -> f64 {
        self.values.get(index).copied().unwrap_or(0.0)
    }

    /// Sets the value at `index`.
    pub fn set(&mut self, index: usize, value: f64) -> Result<()> {
        let dim = self.values.len();
        match self.values.get_mut(index) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(MarkovError::IndexOutOfBounds { index, dim }),
        }
    }

    /// Sum of all entries (L1 norm for non-negative vectors).
    pub fn l1_norm(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).sum()
    }

    /// Plain sum of entries (equals [`Self::l1_norm`] for probability vectors).
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.values.iter().filter(|v| **v != 0.0).count()
    }

    /// Scales every entry by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.values {
            *v *= factor;
        }
    }

    /// Normalizes the vector so its entries sum to 1. Fails on zero mass.
    pub fn normalize(&mut self) -> Result<()> {
        let total = self.sum();
        if total <= 0.0 || !total.is_finite() {
            return Err(MarkovError::ZeroMass);
        }
        self.scale(1.0 / total);
        Ok(())
    }

    /// Dot product with another dense vector.
    pub fn dot(&self, other: &DenseVector) -> Result<f64> {
        if self.dim() != other.dim() {
            return Err(MarkovError::DimensionMismatch {
                op: "dense dot product",
                expected: self.dim(),
                found: other.dim(),
            });
        }
        Ok(self.values.iter().zip(other.values.iter()).map(|(a, b)| a * b).sum())
    }

    /// `self += other` element-wise.
    pub fn add_assign(&mut self, other: &DenseVector) -> Result<()> {
        if self.dim() != other.dim() {
            return Err(MarkovError::DimensionMismatch {
                op: "dense add",
                expected: self.dim(),
                found: other.dim(),
            });
        }
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Element-wise (Hadamard) product, used to condition a prior on an
    /// independent observation likelihood (Lemma 1 of the paper).
    pub fn hadamard(&self, other: &DenseVector) -> Result<DenseVector> {
        if self.dim() != other.dim() {
            return Err(MarkovError::DimensionMismatch {
                op: "hadamard product",
                expected: self.dim(),
                found: other.dim(),
            });
        }
        Ok(DenseVector {
            values: self.values.iter().zip(other.values.iter()).map(|(a, b)| a * b).collect(),
        })
    }

    /// Sums the entries whose state id is set in `mask`.
    pub fn masked_sum(&self, mask: &StateMask) -> f64 {
        // Iterating set bits is faster than scanning the whole vector when
        // the mask is small (query windows typically cover few states).
        if mask.count() * 4 < self.dim() {
            mask.iter().map(|i| self.get(i)).sum()
        } else {
            self.values.iter().enumerate().filter(|(i, _)| mask.contains(*i)).map(|(_, v)| *v).sum()
        }
    }

    /// Removes (returns and zeroes) the mass at states set in `mask`.
    ///
    /// This is the "redirect to the ⊤ state" step of the paper's `M+`
    /// matrix, applied virtually after an ordinary transition.
    pub fn extract_masked(&mut self, mask: &StateMask) -> f64 {
        self.extract_masked_counting(mask).0
    }

    /// As [`Self::extract_masked`], also reporting how many previously
    /// non-zero entries were zeroed — the feed that lets
    /// [`crate::hybrid::PropagationVector`] keep its non-zero count exact
    /// without rescanning the vector.
    pub(crate) fn extract_masked_counting(&mut self, mask: &StateMask) -> (f64, usize) {
        let mut moved = 0.0;
        let mut zeroed = 0usize;
        if mask.count() * 4 < self.dim() {
            for i in mask.iter() {
                if let Some(v) = self.values.get_mut(i) {
                    moved += *v;
                    if *v != 0.0 {
                        zeroed += 1;
                    }
                    *v = 0.0;
                }
            }
        } else {
            for (i, v) in self.values.iter_mut().enumerate() {
                if mask.contains(i) {
                    moved += *v;
                    if *v != 0.0 {
                        zeroed += 1;
                    }
                    *v = 0.0;
                }
            }
        }
        (moved, zeroed)
    }

    /// Removes the entries of states in `mask`, returning them as a sparse
    /// vector (dense-side counterpart of
    /// [`crate::sparse_vec::SparseVector::split_masked`]).
    pub fn split_masked(&mut self, mask: &StateMask) -> crate::sparse_vec::SparseVector {
        let mut pairs = Vec::new();
        for i in mask.iter() {
            if let Some(v) = self.values.get_mut(i) {
                if *v != 0.0 {
                    pairs.push((i, *v));
                    *v = 0.0;
                }
            }
        }
        crate::sparse_vec::SparseVector::from_pairs(self.dim(), pairs)
            // lint: allow(panicking-call-in-lib) — `StateMask::iter` yields only
            // indices below the mask's dimension, which equals `self.dim()`.
            .expect("mask indices are within the vector dimension")
    }

    /// Largest entry and its index, or `None` for an empty vector.
    pub fn argmax(&self) -> Option<(usize, f64)> {
        self.values.iter().copied().enumerate().fold(None, |best, (i, v)| match best {
            Some((_, bv)) if bv >= v => best,
            _ => Some((i, v)),
        })
    }

    /// True when every entry differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &DenseVector, tol: f64) -> bool {
        self.dim() == other.dim()
            && self.values.iter().zip(other.values.iter()).all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Iterates `(index, value)` over non-zero entries.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.values.iter().copied().enumerate().filter(|(_, v)| *v != 0.0)
    }
}

impl From<Vec<f64>> for DenseVector {
    fn from(values: Vec<f64>) -> Self {
        DenseVector::from_vec(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_unit() {
        let z = DenseVector::zeros(4);
        assert_eq!(z.dim(), 4);
        assert_eq!(z.l1_norm(), 0.0);
        let u = DenseVector::unit(4, 2).unwrap();
        assert_eq!(u.get(2), 1.0);
        assert_eq!(u.nnz(), 1);
        assert!(DenseVector::unit(4, 4).is_err());
    }

    #[test]
    fn uniform_distribution_sums_to_one() {
        let u = DenseVector::uniform(8).unwrap();
        assert!((u.sum() - 1.0).abs() < 1e-12);
        assert!(DenseVector::uniform(0).is_err());
    }

    #[test]
    fn normalize_rescales_mass() {
        let mut v = DenseVector::from_vec(vec![1.0, 3.0]);
        v.normalize().unwrap();
        assert!(v.approx_eq(&DenseVector::from_vec(vec![0.25, 0.75]), 1e-12));
        let mut z = DenseVector::zeros(3);
        assert_eq!(z.normalize(), Err(MarkovError::ZeroMass));
    }

    #[test]
    fn dot_and_dimension_checks() {
        let a = DenseVector::from_vec(vec![1.0, 2.0, 3.0]);
        let b = DenseVector::from_vec(vec![0.5, 0.5, 0.0]);
        assert_eq!(a.dot(&b).unwrap(), 1.5);
        let c = DenseVector::zeros(2);
        assert!(a.dot(&c).is_err());
        assert!(a.clone().add_assign(&c).is_err());
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let a = DenseVector::from_vec(vec![0.2, 0.8, 0.0]);
        let b = DenseVector::from_vec(vec![0.5, 0.5, 1.0]);
        let h = a.hadamard(&b).unwrap();
        assert!(h.approx_eq(&DenseVector::from_vec(vec![0.1, 0.4, 0.0]), 1e-12));
    }

    #[test]
    fn masked_sum_and_extract() {
        let mut v = DenseVector::from_vec(vec![0.1, 0.2, 0.3, 0.4]);
        let mask = StateMask::from_indices(4, [1usize, 3]).unwrap();
        assert!((v.masked_sum(&mask) - 0.6).abs() < 1e-12);
        let moved = v.extract_masked(&mask);
        assert!((moved - 0.6).abs() < 1e-12);
        assert_eq!(v.get(1), 0.0);
        assert_eq!(v.get(3), 0.0);
        assert!((v.sum() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn masked_ops_handle_large_masks() {
        // Exercise the dense-scan branch (mask covering most states).
        let mut v = DenseVector::from_vec((0..100).map(|i| i as f64).collect());
        let mask = StateMask::from_indices(100, 0..90usize).unwrap();
        let expected: f64 = (0..90).map(|i| i as f64).sum();
        assert!((v.masked_sum(&mask) - expected).abs() < 1e-9);
        assert!((v.extract_masked(&mask) - expected).abs() < 1e-9);
    }

    #[test]
    fn argmax_finds_peak() {
        let v = DenseVector::from_vec(vec![0.1, 0.7, 0.2]);
        assert_eq!(v.argmax(), Some((1, 0.7)));
        assert_eq!(DenseVector::zeros(0).argmax(), None);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut v = DenseVector::zeros(3);
        v.set(1, 0.5).unwrap();
        assert_eq!(v.get(1), 0.5);
        assert_eq!(v.get(99), 0.0);
        assert!(v.set(3, 1.0).is_err());
    }

    #[test]
    fn iter_nonzero_skips_zeros() {
        let v = DenseVector::from_vec(vec![0.0, 0.5, 0.0, 0.5]);
        let nz: Vec<_> = v.iter_nonzero().collect();
        assert_eq!(nz, vec![(1, 0.5), (3, 0.5)]);
    }
}
