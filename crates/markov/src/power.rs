//! Cached Chapman-Kolmogorov powers.
//!
//! Corollary 2 of the paper evaluates `P(o, t+m) = P(o, t) · M^m`. When the
//! same horizon `m` (or many different horizons) is queried repeatedly —
//! e.g. a dashboard asking "where will every iceberg be in 6 / 12 / 24
//! steps?" — materializing binary powers `M^(2^k)` once and combining them
//! per query beats both re-running `m` sparse steps per object and
//! materializing every `M^m`. The cache grows lazily and is clone-cheap.
//!
//! Note the trade-off the paper's analysis implies: matrix powers densify
//! (`nnz(M^m)` grows with the reachable band), so for a *single* object a
//! stepwise propagation is cheaper; the cache wins when one horizon serves
//! many distribution queries. The ablation bench quantifies this.

use crate::csr::CsrMatrix;
use crate::dense::DenseVector;
use crate::error::{MarkovError, Result};
use crate::sparse_vec::SparseVector;
use crate::stochastic::StochasticMatrix;

/// A lazy cache of the binary powers `M^(2^k)` of a stochastic matrix.
#[derive(Debug, Clone)]
pub struct PowerCache {
    /// `powers[k] = M^(2^k)`; `powers[0] = M`.
    powers: Vec<CsrMatrix>,
}

impl PowerCache {
    /// Creates the cache for `matrix`.
    pub fn new(matrix: &StochasticMatrix) -> PowerCache {
        PowerCache { powers: vec![matrix.matrix().clone()] }
    }

    /// Number of binary powers currently materialized.
    pub fn materialized(&self) -> usize {
        self.powers.len()
    }

    /// Ensures `M^(2^k)` exists for all `2^k ≤ m` and returns nothing.
    fn ensure(&mut self, m: u32) -> Result<()> {
        if m == 0 {
            return Ok(());
        }
        let needed = (32 - m.leading_zeros()) as usize; // bits in m
        while self.powers.len() < needed {
            // lint: allow(panicking-call-in-lib) — `powers` is seeded with the
            // base matrix at construction and only ever grows.
            let last = self.powers.last().expect("non-empty by construction");
            let next = last.matmul(last)?;
            self.powers.push(next);
        }
        Ok(())
    }

    /// `v · M^m` for a dense row vector.
    pub fn propagate_dense(&mut self, v: &DenseVector, m: u32) -> Result<DenseVector> {
        self.ensure(m)?;
        let mut out = v.clone();
        let mut remaining = m;
        let mut k = 0usize;
        while remaining > 0 {
            if remaining & 1 == 1 {
                out = self.powers[k].vecmat_dense(&out)?;
            }
            remaining >>= 1;
            k += 1;
        }
        Ok(out)
    }

    /// `v · M^m` for a sparse row vector (densifies through the product).
    pub fn propagate_sparse(&mut self, v: &SparseVector, m: u32) -> Result<DenseVector> {
        self.propagate_dense(&v.to_dense(), m)
    }

    /// The materialized `M^m` (combines cached binary powers).
    pub fn power(&mut self, m: u32) -> Result<CsrMatrix> {
        self.ensure(m)?;
        let n = self.powers[0].nrows();
        let mut out: Option<CsrMatrix> = None;
        let mut remaining = m;
        let mut k = 0usize;
        while remaining > 0 {
            if remaining & 1 == 1 {
                out = Some(match out {
                    None => self.powers[k].clone(),
                    Some(acc) => acc.matmul(&self.powers[k])?,
                });
            }
            remaining >>= 1;
            k += 1;
        }
        Ok(out.unwrap_or_else(|| CsrMatrix::identity(n)))
    }
}

impl TryFrom<&CsrMatrix> for PowerCache {
    type Error = MarkovError;

    fn try_from(matrix: &CsrMatrix) -> Result<PowerCache> {
        Ok(PowerCache::new(&StochasticMatrix::new(matrix.clone())?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::MarkovChain;
    use crate::testutil;

    fn chain(seed: u64, n: usize) -> MarkovChain {
        let mut rng = testutil::rng(seed);
        MarkovChain::from_csr(testutil::random_banded_stochastic(&mut rng, n, 3, 6)).unwrap()
    }

    #[test]
    fn propagation_matches_stepwise_for_all_horizons() {
        let c = chain(3, 30);
        let mut cache = PowerCache::new(c.stochastic());
        let mut rng = testutil::rng(4);
        let start = testutil::random_distribution(&mut rng, 30, 3);
        for m in 0..=17u32 {
            let fast = cache.propagate_sparse(&start, m).unwrap();
            let slow = c.propagate_sparse(&start, m).unwrap().to_dense();
            assert!(fast.approx_eq(&slow, 1e-10), "horizon {m}");
        }
    }

    #[test]
    fn power_matches_naive_power() {
        let c = chain(9, 12);
        let mut cache = PowerCache::new(c.stochastic());
        for m in [0u32, 1, 2, 5, 8, 13] {
            let fast = cache.power(m).unwrap();
            let slow = c.matrix().power(m).unwrap();
            assert!(fast.approx_eq(&slow, 1e-10), "power {m}");
        }
    }

    #[test]
    fn cache_grows_logarithmically() {
        let c = chain(1, 10);
        let mut cache = PowerCache::new(c.stochastic());
        assert_eq!(cache.materialized(), 1);
        cache.power(1).unwrap();
        assert_eq!(cache.materialized(), 1);
        cache.power(8).unwrap();
        assert_eq!(cache.materialized(), 4); // M, M², M⁴, M⁸
        cache.power(6).unwrap();
        assert_eq!(cache.materialized(), 4, "smaller horizons reuse the cache");
    }

    #[test]
    fn try_from_validates() {
        let good = CsrMatrix::identity(3);
        assert!(PowerCache::try_from(&good).is_ok());
        let bad = CsrMatrix::from_dense(&[vec![0.5, 0.1], vec![0.0, 1.0]]).unwrap();
        assert!(PowerCache::try_from(&bad).is_err());
    }

    #[test]
    fn zero_horizon_is_identity() {
        let c = chain(5, 8);
        let mut cache = PowerCache::new(c.stochastic());
        let m0 = cache.power(0).unwrap();
        assert!(m0.approx_eq(&CsrMatrix::identity(8), 0.0));
        let v = DenseVector::unit(8, 2).unwrap();
        assert!(cache.propagate_dense(&v, 0).unwrap().approx_eq(&v, 0.0));
    }
}
