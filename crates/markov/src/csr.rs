//! Compressed sparse row (CSR) matrices and the multiplication kernels that
//! every query of the paper reduces to.
//!
//! The paper's central observation is that possible-worlds-correct
//! probabilistic spatio-temporal queries reduce to (row-)vector × matrix
//! products with (augmented) Markov-chain transition matrices. All of those
//! products are implemented here:
//!
//! * [`CsrMatrix::vecmat_dense`] — `v · M` with a dense `v`,
//! * [`CsrMatrix::vecmat_sparse`] — `v · M` with a sparse `v`, cost
//!   proportional to the touched rows only,
//! * [`CsrMatrix::matmul`] — `M · N` (Chapman-Kolmogorov m-step matrices),
//! * [`CsrMatrix::transpose`] — `Mᵀ` for the query-based backward pass.

use crate::dense::DenseVector;
use crate::error::{MarkovError, Result};
use crate::sparse_vec::SparseVector;

/// A sparse matrix in compressed sparse row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    data: Vec<f64>,
}

/// Reusable scratch space for sparse vector–matrix products.
///
/// `vecmat_sparse` scatters into a dense accumulator; reusing the
/// accumulator across the thousands of transitions of a query avoids an
/// `O(|S|)` allocation + clear per step (the clear is proportional to the
/// *touched* entries only).
#[derive(Debug, Default, Clone)]
pub struct SpmvScratch {
    acc: Vec<f64>,
    touched: Vec<u32>,
    /// One epoch-tracked accumulator lane per member of a batched sparse
    /// product (see `CsrMatrix::step_batch`); pooled so a long sweep
    /// allocates them once.
    lanes: Vec<BatchLane>,
    /// The stamp the current sweep's live lane entries carry in their
    /// epoch arrays; bumped by [`SpmvScratch::lanes_epoch`] so lanes never
    /// need clearing between steps.
    lane_stamp: u32,
    /// Batched-kernel member lists, pooled for the same reason (one batch
    /// sweep performs one `step_batch` call per timestamp).
    pub(crate) members_sparse: Vec<usize>,
    pub(crate) members_dense: Vec<usize>,
    /// Shared-union merge state of the sparse batched kernel: an
    /// epoch-marked row set (`merge_marks` is live where it equals
    /// `merge_stamp`), the union row list sorted once per step, per-row
    /// bucket cursors, the scattered per-row contribution events (lane ids
    /// only — each lane's values are replayed in order through
    /// `merge_cursor` during the sweep) — a counting-sort layout that
    /// costs O(1) per contribution where a cursor heap would pay
    /// O(log batch).
    pub(crate) merge_rows: Vec<u32>,
    pub(crate) merge_marks: Vec<u32>,
    pub(crate) merge_stamp: u32,
    pub(crate) merge_bucket: Vec<u32>,
    pub(crate) merge_events: Vec<u32>,
    pub(crate) merge_cursor: Vec<u32>,
    /// Recycled dense-vector storage for the batched dense kernel: each
    /// step's inputs return their buffers here and the next step's outputs
    /// take them back, so a steady-state sweep allocates nothing.
    pub(crate) dense_pool: Vec<Vec<f64>>,
    /// Recycled sparse `(indices, values)` storage for the batched sparse
    /// kernel, mirroring `dense_pool`.
    pub(crate) sparse_pool: Vec<(Vec<u32>, Vec<f64>)>,
    /// Interleaved input/output panels of the dense panel kernel
    /// (`panel[i * width + k]` = vector `k`'s value at state `i`).
    pub(crate) panel_in: Vec<f64>,
    pub(crate) panel_out: Vec<f64>,
}

/// One member's accumulator lane in the batched sparse kernel. A slot
/// `acc[c]` is live iff `epoch[c]` equals the sweep's stamp — first-touch
/// detection without a float probe and without clearing between steps.
/// `lo`/`hi` bound the touched columns so the gather pass can recognize
/// (near-)contiguous touched sets and scan the span in order instead of
/// sorting the touched list.
#[derive(Debug, Clone)]
pub(crate) struct BatchLane {
    pub(crate) acc: Vec<f64>,
    pub(crate) touched: Vec<u32>,
    pub(crate) epoch: Vec<u32>,
    pub(crate) lo: u32,
    pub(crate) hi: u32,
}

impl Default for BatchLane {
    fn default() -> Self {
        BatchLane { acc: Vec::new(), touched: Vec::new(), epoch: Vec::new(), lo: u32::MAX, hi: 0 }
    }
}

impl SpmvScratch {
    /// Creates scratch space; it grows lazily to the needed dimension.
    pub fn new() -> Self {
        SpmvScratch::default()
    }

    fn ensure(&mut self, dim: usize) {
        if self.acc.len() < dim {
            self.acc.resize(dim, 0.0);
        }
    }

    /// `count` accumulator lanes of dimension `dim` plus the fresh epoch
    /// stamp that marks this sweep's live entries. No accumulator data is
    /// cleared — stale values are simply never read because their epoch
    /// differs from the returned stamp.
    pub(crate) fn lanes_epoch(&mut self, count: usize, dim: usize) -> (&mut [BatchLane], u32) {
        self.lane_stamp = self.lane_stamp.wrapping_add(1);
        if self.lane_stamp == 0 {
            // One-in-2³² wrap: reset every epoch array so stale stamps
            // from the previous cycle cannot collide.
            for lane in &mut self.lanes {
                lane.epoch.iter_mut().for_each(|e| *e = 0);
            }
            self.lane_stamp = 1;
        }
        if self.lanes.len() < count {
            self.lanes.resize_with(count, Default::default);
        }
        for lane in &mut self.lanes[..count] {
            if lane.acc.len() < dim {
                lane.acc.resize(dim, 0.0);
            }
            if lane.epoch.len() < dim {
                lane.epoch.resize(dim, 0);
            }
            lane.touched.clear();
            lane.lo = u32::MAX;
            lane.hi = 0;
        }
        (&mut self.lanes[..count], self.lane_stamp)
    }

    /// A fresh stamp for the shared-union merge's row set, with
    /// `merge_marks` and `merge_bucket` grown to `nrows`. Like
    /// [`SpmvScratch::lanes_epoch`], nothing is cleared between steps —
    /// a row is in the current union iff its mark equals the stamp.
    pub(crate) fn merge_epoch(&mut self, nrows: usize) -> u32 {
        self.merge_stamp = self.merge_stamp.wrapping_add(1);
        if self.merge_stamp == 0 {
            self.merge_marks.iter_mut().for_each(|m| *m = 0);
            self.merge_stamp = 1;
        }
        if self.merge_marks.len() < nrows {
            self.merge_marks.resize(nrows, 0);
        }
        if self.merge_bucket.len() < nrows {
            self.merge_bucket.resize(nrows, 0);
        }
        self.merge_stamp
    }
}

impl CsrMatrix {
    /// Assembles a CSR matrix from raw parts.
    ///
    /// Intended for use by [`crate::coo::CooBuilder`] and tests; the caller
    /// must guarantee CSR invariants (monotone `indptr`, sorted column
    /// indices within each row).
    ///
    /// # Panics
    ///
    /// Panics when a column index is `≥ ncols` — every stored index being
    /// in range is the invariant the unchecked accumulation of the batched
    /// kernels relies on, so it is enforced at construction rather than
    /// merely documented.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        data: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), nrows + 1);
        debug_assert_eq!(indices.len(), data.len());
        debug_assert_eq!(*indptr.last().unwrap_or(&0), indices.len());
        assert!(
            indices.iter().all(|&c| (c as usize) < ncols),
            "CSR column index out of range (ncols = {ncols})"
        );
        CsrMatrix { nrows, ncols, indptr, indices, data }
    }

    /// Builds a matrix from per-row `(col, value)` lists.
    pub fn from_rows(ncols: usize, rows: &[Vec<(usize, f64)>]) -> Result<Self> {
        let mut builder = crate::coo::CooBuilder::new(rows.len(), ncols);
        for (r, row) in rows.iter().enumerate() {
            for &(c, v) in row {
                builder.push(r, c, v)?;
            }
        }
        Ok(builder.build())
    }

    /// Builds from a dense row-major representation (test convenience).
    pub fn from_dense(rows: &[Vec<f64>]) -> Result<Self> {
        let ncols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut builder = crate::coo::CooBuilder::new(rows.len(), ncols);
        for (r, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(MarkovError::DimensionMismatch {
                    op: "from_dense row length",
                    expected: ncols,
                    found: row.len(),
                });
            }
            for (c, &v) in row.iter().enumerate() {
                builder.push(r, c, v)?;
            }
        }
        Ok(builder.build())
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            data: vec![1.0; n],
        }
    }

    /// Matrix shape `(nrows, ncols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// The stored entries of row `i` as `(column indices, values)`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        (&self.indices[lo..hi], &self.data[lo..hi])
    }

    /// Number of stored entries in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Entry `(i, j)` via binary search within the row.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Sum of the entries in row `i`.
    pub fn row_sum(&self, i: usize) -> f64 {
        self.row(i).1.iter().sum()
    }

    /// Applies `f` to every stored value, returning a new matrix.
    pub fn map_values(&self, f: impl Fn(f64) -> f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v = f(*v);
        }
        out
    }

    /// The transposed matrix `Mᵀ` (CSC-to-CSR conversion, O(nnz)).
    pub fn transpose(&self) -> CsrMatrix {
        let nnz = self.nnz();
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; nnz];
        let mut data = vec![0.0f64; nnz];
        let mut next = counts;
        for row in 0..self.nrows {
            let (cols, vals) = self.row(row);
            for (&c, &v) in cols.iter().zip(vals) {
                let dst = next[c as usize];
                indices[dst] = row as u32;
                data[dst] = v;
                next[c as usize] += 1;
            }
        }
        CsrMatrix { nrows: self.ncols, ncols: self.nrows, indptr, indices, data }
    }

    /// Row-vector × matrix with a dense input: `out = v · M`.
    pub fn vecmat_dense(&self, v: &DenseVector) -> Result<DenseVector> {
        if v.dim() != self.nrows {
            return Err(MarkovError::DimensionMismatch {
                op: "vecmat (dense)",
                expected: self.nrows,
                found: v.dim(),
            });
        }
        let mut out = DenseVector::zeros(self.ncols);
        let out_slice = out.as_mut_slice();
        for (i, &vi) in v.as_slice().iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(i);
            for (&c, &m) in cols.iter().zip(vals) {
                out_slice[c as usize] += vi * m;
            }
        }
        Ok(out)
    }

    /// Row-vector × matrix with a sparse input, reusing `scratch`.
    ///
    /// Cost is `Σ_{i ∈ supp(v)} nnz(row i)` — the `|S_reach|` bound of the
    /// paper — independent of `|S|`.
    pub fn vecmat_sparse_with(
        &self,
        v: &SparseVector,
        scratch: &mut SpmvScratch,
    ) -> Result<SparseVector> {
        if v.dim() != self.nrows {
            return Err(MarkovError::DimensionMismatch {
                op: "vecmat (sparse)",
                expected: self.nrows,
                found: v.dim(),
            });
        }
        scratch.ensure(self.ncols);
        scratch.touched.clear();
        for (i, vi) in v.iter() {
            let (cols, vals) = self.row(i);
            for (&c, &m) in cols.iter().zip(vals) {
                let slot = &mut scratch.acc[c as usize];
                if *slot == 0.0 {
                    scratch.touched.push(c);
                }
                *slot += vi * m;
            }
        }
        scratch.touched.sort_unstable();
        let mut pairs = Vec::with_capacity(scratch.touched.len());
        for &c in &scratch.touched {
            let val = scratch.acc[c as usize];
            scratch.acc[c as usize] = 0.0;
            if val != 0.0 {
                pairs.push((c as usize, val));
            }
        }
        SparseVector::from_pairs(self.ncols, pairs)
    }

    /// Row-vector × matrix with a sparse input (allocating convenience).
    pub fn vecmat_sparse(&self, v: &SparseVector) -> Result<SparseVector> {
        let mut scratch = SpmvScratch::new();
        self.vecmat_sparse_with(v, &mut scratch)
    }

    /// Matrix × column-vector: `out = M · v`, i.e. `out[i] = row_i · v`.
    ///
    /// This is the kernel of the query-based backward pass: the recurrence
    /// `h_t(s) = Σ_j M(s,j) · h_{t+1}(j)` is exactly `h_t = M · h_{t+1}`.
    /// Equivalent to `vecmat_dense` on the transposed matrix, but avoids
    /// materializing `Mᵀ` and reads each row contiguously.
    pub fn matvec_dense(&self, v: &DenseVector) -> Result<DenseVector> {
        if v.dim() != self.ncols {
            return Err(MarkovError::DimensionMismatch {
                op: "matvec (dense)",
                expected: self.ncols,
                found: v.dim(),
            });
        }
        let vs = v.as_slice();
        let mut out = DenseVector::zeros(self.nrows);
        let out_slice = out.as_mut_slice();
        for (i, slot) in out_slice.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&c, &m) in cols.iter().zip(vals) {
                acc += m * vs[c as usize];
            }
            *slot = acc;
        }
        Ok(out)
    }

    /// Matrix product `self · other` (SpGEMM with a dense row accumulator).
    pub fn matmul(&self, other: &CsrMatrix) -> Result<CsrMatrix> {
        if self.ncols != other.nrows {
            return Err(MarkovError::DimensionMismatch {
                op: "matmul",
                expected: self.ncols,
                found: other.nrows,
            });
        }
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        let mut acc = vec![0.0f64; other.ncols];
        let mut touched: Vec<u32> = Vec::new();
        for i in 0..self.nrows {
            touched.clear();
            let (cols, vals) = self.row(i);
            for (&k, &a) in cols.iter().zip(vals) {
                let (bcols, bvals) = other.row(k as usize);
                for (&j, &b) in bcols.iter().zip(bvals) {
                    let slot = &mut acc[j as usize];
                    if *slot == 0.0 {
                        touched.push(j);
                    }
                    *slot += a * b;
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                let v = acc[j as usize];
                acc[j as usize] = 0.0;
                if v != 0.0 {
                    indices.push(j);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Ok(CsrMatrix { nrows: self.nrows, ncols: other.ncols, indptr, indices, data })
    }

    /// Matrix power `M^k` by exponentiation-by-squaring (Chapman-Kolmogorov
    /// m-step transition matrices, Corollary 2 of the paper).
    pub fn power(&self, mut k: u32) -> Result<CsrMatrix> {
        if self.nrows != self.ncols {
            return Err(MarkovError::DimensionMismatch {
                op: "matrix power",
                expected: self.nrows,
                found: self.ncols,
            });
        }
        let mut result = CsrMatrix::identity(self.nrows);
        let mut base = self.clone();
        while k > 0 {
            if k & 1 == 1 {
                result = result.matmul(&base)?;
            }
            k >>= 1;
            if k > 0 {
                base = base.matmul(&base)?;
            }
        }
        Ok(result)
    }

    /// Converts to a dense row-major representation (test convenience).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.ncols]; self.nrows];
        for (i, row) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                row[c as usize] = v;
            }
        }
        out
    }

    /// True when every entry differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &CsrMatrix, tol: f64) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        for i in 0..self.nrows {
            let (ac, av) = self.row(i);
            let (bc, bv) = other.row(i);
            // Compare as merged sparse rows so differing sparsity patterns
            // with near-zero values still compare equal.
            let (mut p, mut q) = (0usize, 0usize);
            while p < ac.len() || q < bc.len() {
                let ai = ac.get(p).copied().unwrap_or(u32::MAX);
                let bi = bc.get(q).copied().unwrap_or(u32::MAX);
                match ai.cmp(&bi) {
                    std::cmp::Ordering::Less => {
                        if av[p].abs() > tol {
                            return false;
                        }
                        p += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        if bv[q].abs() > tol {
                            return false;
                        }
                        q += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        if (av[p] - bv[q]).abs() > tol {
                            return false;
                        }
                        p += 1;
                        q += 1;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running-example chain used throughout Section V of the paper.
    fn paper_matrix() -> CsrMatrix {
        CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
            .unwrap()
    }

    #[test]
    fn identity_roundtrip() {
        let id = CsrMatrix::identity(4);
        assert_eq!(id.nnz(), 4);
        let v = DenseVector::from_vec(vec![0.1, 0.2, 0.3, 0.4]);
        assert!(id.vecmat_dense(&v).unwrap().approx_eq(&v, 0.0));
    }

    #[test]
    fn row_access_and_get() {
        let m = paper_matrix();
        assert_eq!(m.row_nnz(0), 1);
        assert_eq!(m.row_nnz(1), 2);
        assert_eq!(m.get(1, 0), 0.6);
        assert_eq!(m.get(1, 1), 0.0);
        assert!((m.row_sum(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vecmat_dense_matches_paper_corollary_1() {
        // P(o,0) = (0,1,0); P(o,1) = P(o,0)·M = (0.6, 0, 0.4).
        let m = paper_matrix();
        let p0 = DenseVector::from_vec(vec![0.0, 1.0, 0.0]);
        let p1 = m.vecmat_dense(&p0).unwrap();
        assert!(p1.approx_eq(&DenseVector::from_vec(vec![0.6, 0.0, 0.4]), 1e-12));
        // P(o,2) = P(o,1)·M = (0, 0.32, 0.68) — the paper's lower-bound step.
        let p2 = m.vecmat_dense(&p1).unwrap();
        assert!(p2.approx_eq(&DenseVector::from_vec(vec![0.0, 0.32, 0.68]), 1e-12));
    }

    #[test]
    fn vecmat_sparse_agrees_with_dense() {
        let m = paper_matrix();
        let sv = SparseVector::from_pairs(3, [(1, 1.0)]).unwrap();
        let out = m.vecmat_sparse(&sv).unwrap();
        assert!(out.to_dense().approx_eq(&DenseVector::from_vec(vec![0.6, 0.0, 0.4]), 1e-12));
        // Scratch reuse across calls must not leak accumulator state.
        let mut scratch = SpmvScratch::new();
        let a = m.vecmat_sparse_with(&sv, &mut scratch).unwrap();
        let b = m.vecmat_sparse_with(&a, &mut scratch).unwrap();
        assert!(b.to_dense().approx_eq(&DenseVector::from_vec(vec![0.0, 0.32, 0.68]), 1e-12));
    }

    #[test]
    fn dimension_mismatches_error() {
        let m = paper_matrix();
        assert!(m.vecmat_dense(&DenseVector::zeros(2)).is_err());
        assert!(m.vecmat_sparse(&SparseVector::zeros(5)).is_err());
        let r = CsrMatrix::from_dense(&[vec![1.0, 0.0]]).unwrap();
        assert!(m.matmul(&r).is_err());
        assert!(r.power(2).is_err());
    }

    #[test]
    fn transpose_is_involution_and_swaps_entries() {
        let m = paper_matrix();
        let t = m.transpose();
        assert_eq!(t.get(0, 1), 0.6);
        assert_eq!(t.get(1, 2), 0.8);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_matches_dense_multiplication() {
        let m = paper_matrix();
        let m2 = m.matmul(&m).unwrap();
        let dense = m.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                let expected: f64 = (0..3).map(|k| dense[i][k] * dense[k][j]).sum();
                assert!((m2.get(i, j) - expected).abs() < 1e-12, "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn power_matches_repeated_multiplication() {
        let m = paper_matrix();
        let p0 = m.power(0).unwrap();
        assert!(p0.approx_eq(&CsrMatrix::identity(3), 0.0));
        let p1 = m.power(1).unwrap();
        assert!(p1.approx_eq(&m, 0.0));
        let mut expected = m.clone();
        for _ in 1..5 {
            expected = expected.matmul(&m).unwrap();
        }
        assert!(m.power(5).unwrap().approx_eq(&expected, 1e-12));
    }

    #[test]
    fn chapman_kolmogorov_via_power() {
        // P(o, t+m) = P(o, t) · M^m (Corollary 2).
        let m = paper_matrix();
        let p0 = DenseVector::from_vec(vec![0.0, 1.0, 0.0]);
        let direct = m
            .power(4)
            .unwrap()
            .transpose() // use vecmat on the untransposed power below instead
            .transpose()
            .vecmat_dense(&p0)
            .unwrap();
        let mut stepped = p0;
        for _ in 0..4 {
            stepped = m.vecmat_dense(&stepped).unwrap();
        }
        assert!(direct.approx_eq(&stepped, 1e-12));
    }

    #[test]
    fn matvec_equals_transposed_vecmat() {
        let m = paper_matrix();
        let v = DenseVector::from_vec(vec![0.2, 0.5, 0.3]);
        let direct = m.matvec_dense(&v).unwrap();
        let via_transpose = m.transpose().vecmat_dense(&v).unwrap();
        assert!(direct.approx_eq(&via_transpose, 1e-12));
        assert!(m.matvec_dense(&DenseVector::zeros(2)).is_err());
        // Backward-pass sanity: M · 1 = 1 for a stochastic matrix.
        let ones = DenseVector::from_vec(vec![1.0; 3]);
        assert!(m.matvec_dense(&ones).unwrap().approx_eq(&ones, 1e-12));
    }

    #[test]
    fn from_rows_builds_expected_matrix() {
        let m =
            CsrMatrix::from_rows(3, &[vec![(2, 1.0)], vec![(0, 0.6), (2, 0.4)], vec![]]).unwrap();
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m.row_nnz(2), 0);
        assert_eq!(m.get(1, 0), 0.6);
    }

    #[test]
    fn from_dense_validates_row_lengths() {
        assert!(CsrMatrix::from_dense(&[vec![1.0, 0.0], vec![1.0]]).is_err());
    }

    #[test]
    fn map_values_transforms_entries() {
        let m = paper_matrix().map_values(|v| v * 2.0);
        assert_eq!(m.get(1, 0), 1.2);
    }

    #[test]
    fn approx_eq_tolerates_pattern_differences() {
        let a = CsrMatrix::from_dense(&[vec![1.0, 1e-15], vec![0.0, 1.0]]).unwrap();
        let b = CsrMatrix::from_dense(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(a.approx_eq(&b, 1e-12));
        assert!(!a.approx_eq(&b, 1e-16));
        let c = CsrMatrix::identity(3);
        assert!(!a.approx_eq(&c, 1.0));
    }
}
