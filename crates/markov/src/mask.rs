//! Bitset over state ids.
//!
//! Query windows select a subset `S▫ ⊆ S` of the state space; the engines
//! test membership for every entry produced by a transition. A packed bitset
//! gives O(1) membership with 1 bit per state — at the paper's default
//! `|S| = 100,000` that is 12.5 KB, which stays resident in L1/L2 cache.

use crate::error::{MarkovError, Result};

const BITS: usize = 64;

/// A fixed-dimension set of state ids backed by 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateMask {
    dim: usize,
    words: Vec<u64>,
    count: usize,
}

impl StateMask {
    /// Creates an empty mask over `dim` states.
    pub fn new(dim: usize) -> Self {
        StateMask { dim, words: vec![0; dim.div_ceil(BITS)], count: 0 }
    }

    /// Builds a mask from an iterator of state ids.
    pub fn from_indices<I, T>(dim: usize, indices: I) -> Result<Self>
    where
        I: IntoIterator<Item = T>,
        T: Into<usize>,
    {
        let mut mask = StateMask::new(dim);
        for idx in indices {
            mask.insert(idx.into())?;
        }
        Ok(mask)
    }

    /// Builds a full mask (all states set).
    pub fn full(dim: usize) -> Self {
        let mut mask = StateMask::new(dim);
        for w in &mut mask.words {
            *w = u64::MAX;
        }
        // Clear the bits beyond `dim` in the last word.
        let extra = mask.words.len() * BITS - dim;
        if extra > 0 {
            if let Some(last) = mask.words.last_mut() {
                *last >>= extra;
            }
        }
        mask.count = dim;
        mask
    }

    /// Dimension of the underlying state space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of states currently in the set.
    pub fn count(&self) -> usize {
        self.count
    }

    /// True when no state is set.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds a state id; idempotent.
    pub fn insert(&mut self, index: usize) -> Result<()> {
        if index >= self.dim {
            return Err(MarkovError::IndexOutOfBounds { index, dim: self.dim });
        }
        let (word, bit) = (index / BITS, index % BITS);
        if self.words[word] & (1 << bit) == 0 {
            self.words[word] |= 1 << bit;
            self.count += 1;
        }
        Ok(())
    }

    /// Removes a state id; idempotent.
    pub fn remove(&mut self, index: usize) -> Result<()> {
        if index >= self.dim {
            return Err(MarkovError::IndexOutOfBounds { index, dim: self.dim });
        }
        let (word, bit) = (index / BITS, index % BITS);
        if self.words[word] & (1 << bit) != 0 {
            self.words[word] &= !(1 << bit);
            self.count -= 1;
        }
        Ok(())
    }

    /// Membership test. Out-of-range ids are never members.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.dim {
            return false;
        }
        self.words[index / BITS] & (1 << (index % BITS)) != 0
    }

    /// The complement set `S ∖ self`, used to answer PST∀Q via
    /// `P∀(S▫) = 1 − P∃(S ∖ S▫)` (Section VII of the paper).
    pub fn complement(&self) -> StateMask {
        let mut out =
            StateMask { dim: self.dim, words: Vec::with_capacity(self.words.len()), count: 0 };
        for w in &self.words {
            out.words.push(!w);
        }
        let extra = out.words.len() * BITS - self.dim;
        if extra > 0 {
            if let Some(last) = out.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
        out.count = self.dim - self.count;
        out
    }

    /// Set union.
    pub fn union(&self, other: &StateMask) -> Result<StateMask> {
        if self.dim != other.dim {
            return Err(MarkovError::DimensionMismatch {
                op: "mask union",
                expected: self.dim,
                found: other.dim,
            });
        }
        let words: Vec<u64> = self.words.iter().zip(&other.words).map(|(a, b)| a | b).collect();
        let count = words.iter().map(|w| w.count_ones() as usize).sum();
        Ok(StateMask { dim: self.dim, words, count })
    }

    /// Set intersection.
    pub fn intersection(&self, other: &StateMask) -> Result<StateMask> {
        if self.dim != other.dim {
            return Err(MarkovError::DimensionMismatch {
                op: "mask intersection",
                expected: self.dim,
                found: other.dim,
            });
        }
        let words: Vec<u64> = self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect();
        let count = words.iter().map(|w| w.count_ones() as usize).sum();
        Ok(StateMask { dim: self.dim, words, count })
    }

    /// True when the two masks share at least one state.
    pub fn intersects(&self, other: &StateMask) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates the set state ids in ascending order.
    pub fn iter(&self) -> MaskIter<'_> {
        MaskIter { mask: self, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// Collects the set state ids into a vector.
    pub fn to_indices(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

/// Iterator over set bits of a [`StateMask`].
pub struct MaskIter<'a> {
    mask: &'a StateMask,
    word_idx: usize,
    current: u64,
}

impl Iterator for MaskIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.word_idx * BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.mask.words.len() {
                return None;
            }
            self.current = self.mask.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut m = StateMask::new(130);
        assert!(!m.contains(0));
        m.insert(0).unwrap();
        m.insert(64).unwrap();
        m.insert(129).unwrap();
        m.insert(129).unwrap(); // idempotent
        assert_eq!(m.count(), 3);
        assert!(m.contains(0) && m.contains(64) && m.contains(129));
        assert!(!m.contains(1));
        assert!(!m.contains(1000));
        m.remove(64).unwrap();
        m.remove(64).unwrap(); // idempotent
        assert_eq!(m.count(), 2);
        assert!(!m.contains(64));
        assert!(m.insert(130).is_err());
        assert!(m.remove(130).is_err());
    }

    #[test]
    fn from_indices_and_iter_roundtrip() {
        let m = StateMask::from_indices(100, [5usize, 63, 64, 99]).unwrap();
        assert_eq!(m.to_indices(), vec![5, 63, 64, 99]);
        assert!(StateMask::from_indices(10, [10usize]).is_err());
    }

    #[test]
    fn full_and_complement() {
        let full = StateMask::full(70);
        assert_eq!(full.count(), 70);
        assert!(full.contains(69));
        let m = StateMask::from_indices(70, [0usize, 69]).unwrap();
        let c = m.complement();
        assert_eq!(c.count(), 68);
        assert!(!c.contains(0));
        assert!(!c.contains(69));
        assert!(c.contains(1));
        // Complement of the complement is the original.
        assert_eq!(c.complement(), m);
        // No bits beyond `dim` leak into iteration.
        assert!(c.iter().all(|i| i < 70));
    }

    #[test]
    fn union_intersection_intersects() {
        let a = StateMask::from_indices(32, [1usize, 2, 3]).unwrap();
        let b = StateMask::from_indices(32, [3usize, 4]).unwrap();
        assert_eq!(a.union(&b).unwrap().to_indices(), vec![1, 2, 3, 4]);
        assert_eq!(a.intersection(&b).unwrap().to_indices(), vec![3]);
        assert!(a.intersects(&b));
        let c = StateMask::from_indices(32, [10usize]).unwrap();
        assert!(!a.intersects(&c));
        let d = StateMask::new(16);
        assert!(a.union(&d).is_err());
        assert!(a.intersection(&d).is_err());
    }

    #[test]
    fn empty_mask_iterates_nothing() {
        let m = StateMask::new(0);
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
        let m = StateMask::new(200);
        assert_eq!(m.iter().count(), 0);
    }
}
