//! Row-stochastic transition matrices (Definition 5/6 of the paper).
//!
//! A [`StochasticMatrix`] wraps a [`CsrMatrix`] whose rows are valid discrete
//! probability distributions: all entries non-negative and every row summing
//! to 1 (within a numerical tolerance). The paper assumes the single-step
//! transition probabilities `P_{i,j}` are given (expert knowledge or learned
//! from historical data); this type is the validated carrier of that input.

use crate::csr::CsrMatrix;
use crate::error::{MarkovError, Result};

/// Default tolerance for row-sum validation.
pub const ROW_SUM_TOLERANCE: f64 = 1e-9;

/// A validated row-stochastic square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticMatrix {
    inner: CsrMatrix,
}

impl StochasticMatrix {
    /// Validates `matrix` as row-stochastic with the default tolerance.
    ///
    /// Rows are required to be square, non-negative, and sum to
    /// `1 ± ROW_SUM_TOLERANCE`. Rows with **zero** stored entries are
    /// rejected as well: every state needs *somewhere* to go (a sink state
    /// should carry an explicit self-loop instead).
    pub fn new(matrix: CsrMatrix) -> Result<Self> {
        Self::with_tolerance(matrix, ROW_SUM_TOLERANCE)
    }

    /// Validates with a caller-supplied tolerance.
    pub fn with_tolerance(matrix: CsrMatrix, tol: f64) -> Result<Self> {
        let (nrows, ncols) = matrix.shape();
        if nrows != ncols {
            return Err(MarkovError::DimensionMismatch {
                op: "stochastic matrix (square)",
                expected: nrows,
                found: ncols,
            });
        }
        for i in 0..nrows {
            let (_, vals) = matrix.row(i);
            let mut sum = 0.0;
            for &v in vals {
                if v < 0.0 {
                    return Err(MarkovError::InvalidProbability { value: v });
                }
                sum += v;
            }
            if (sum - 1.0).abs() > tol {
                return Err(MarkovError::NotStochastic { row: i, sum });
            }
        }
        Ok(StochasticMatrix { inner: matrix })
    }

    /// Normalizes each row of `matrix` to sum to 1, then wraps it.
    ///
    /// This mirrors the paper's treatment of the road-network datasets:
    /// "the value of the non-zero entries of one line in the matrix are set
    /// randomly and sum up to one". Rows with zero mass receive a self-loop.
    pub fn normalize(matrix: CsrMatrix) -> Result<Self> {
        let (nrows, ncols) = matrix.shape();
        if nrows != ncols {
            return Err(MarkovError::DimensionMismatch {
                op: "stochastic matrix (square)",
                expected: nrows,
                found: ncols,
            });
        }
        let mut builder = crate::coo::CooBuilder::with_capacity(nrows, ncols, matrix.nnz());
        for i in 0..nrows {
            let (cols, vals) = matrix.row(i);
            let sum: f64 = vals.iter().map(|v| v.abs()).sum();
            if sum == 0.0 {
                builder.push(i, i, 1.0)?;
            } else {
                for (&c, &v) in cols.iter().zip(vals) {
                    builder.push(i, c as usize, v.abs() / sum)?;
                }
            }
        }
        StochasticMatrix::new(builder.build())
    }

    /// The identity chain (every state loops to itself).
    pub fn identity(n: usize) -> Self {
        StochasticMatrix { inner: CsrMatrix::identity(n) }
    }

    /// Number of states.
    pub fn dim(&self) -> usize {
        self.inner.nrows()
    }

    /// Read access to the underlying CSR matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.inner
    }

    /// Consumes the wrapper, returning the underlying CSR matrix.
    pub fn into_matrix(self) -> CsrMatrix {
        self.inner
    }

    /// The transposed (no longer stochastic) matrix, needed by the
    /// query-based backward pass.
    pub fn transposed(&self) -> CsrMatrix {
        self.inner.transpose()
    }

    /// `M^m` (Chapman-Kolmogorov). The result is again row-stochastic.
    pub fn power(&self, m: u32) -> Result<StochasticMatrix> {
        Ok(StochasticMatrix { inner: self.inner.power(m)? })
    }

    /// Average number of stored transitions per state.
    pub fn mean_out_degree(&self) -> f64 {
        if self.dim() == 0 {
            0.0
        } else {
            self.inner.nnz() as f64 / self.dim() as f64
        }
    }

    /// Maximum out-degree over all states.
    pub fn max_out_degree(&self) -> usize {
        (0..self.dim()).map(|i| self.inner.row_nnz(i)).max().unwrap_or(0)
    }

    /// States whose only transition is a self-loop (absorbing states).
    pub fn absorbing_states(&self) -> Vec<usize> {
        (0..self.dim())
            .filter(|&i| {
                let (cols, vals) = self.inner.row(i);
                cols.len() == 1
                    && cols[0] as usize == i
                    && (vals[0] - 1.0).abs() <= ROW_SUM_TOLERANCE
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_matrix() -> CsrMatrix {
        CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
            .unwrap()
    }

    #[test]
    fn accepts_valid_stochastic_matrix() {
        let m = StochasticMatrix::new(paper_matrix()).unwrap();
        assert_eq!(m.dim(), 3);
        assert!((m.mean_out_degree() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.max_out_degree(), 2);
    }

    #[test]
    fn rejects_bad_row_sum() {
        let bad = CsrMatrix::from_dense(&[vec![0.5, 0.4], vec![0.0, 1.0]]).unwrap();
        match StochasticMatrix::new(bad) {
            Err(MarkovError::NotStochastic { row: 0, sum }) => assert!((sum - 0.9).abs() < 1e-12),
            other => panic!("expected NotStochastic, got {other:?}"),
        }
    }

    #[test]
    fn rejects_negative_entries() {
        let bad = CsrMatrix::from_dense(&[vec![1.5, -0.5], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(StochasticMatrix::new(bad), Err(MarkovError::InvalidProbability { .. })));
    }

    #[test]
    fn rejects_empty_rows() {
        let bad = CsrMatrix::from_dense(&[vec![0.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            StochasticMatrix::new(bad),
            Err(MarkovError::NotStochastic { row: 0, .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let bad = CsrMatrix::from_dense(&[vec![0.5, 0.5, 0.0]]).unwrap();
        assert!(StochasticMatrix::new(bad).is_err());
        assert!(StochasticMatrix::normalize(bad2()).is_err());
        fn bad2() -> CsrMatrix {
            CsrMatrix::from_dense(&[vec![0.5, 0.5, 0.0]]).unwrap()
        }
    }

    #[test]
    fn normalize_rescales_rows_and_fixes_sinks() {
        let raw = CsrMatrix::from_dense(&[
            vec![2.0, 2.0, 0.0],
            vec![0.0, 0.0, 0.0], // sink: becomes a self-loop
            vec![0.0, 3.0, 1.0],
        ])
        .unwrap();
        let m = StochasticMatrix::normalize(raw).unwrap();
        assert_eq!(m.matrix().get(0, 0), 0.5);
        assert_eq!(m.matrix().get(1, 1), 1.0);
        assert_eq!(m.matrix().get(2, 1), 0.75);
        assert_eq!(m.absorbing_states(), vec![1]);
    }

    #[test]
    fn power_stays_stochastic() {
        let m = StochasticMatrix::new(paper_matrix()).unwrap();
        let m5 = m.power(5).unwrap();
        for i in 0..3 {
            assert!((m5.matrix().row_sum(i) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_is_all_absorbing() {
        let id = StochasticMatrix::identity(4);
        assert_eq!(id.absorbing_states(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn transposed_columns_become_rows() {
        let m = StochasticMatrix::new(paper_matrix()).unwrap();
        let t = m.transposed();
        assert_eq!(t.get(0, 1), 0.6);
        assert_eq!(t.get(2, 0), 1.0);
    }
}
