//! Cache-blocked, branch-light kernels behind [`CsrMatrix::step_batch`].
//!
//! The batched transition has two halves with very different memory
//! behaviour, and this module owns the fast path of both:
//!
//! * **Dense panels** — densified vectors are packed into an interleaved
//!   *panel*: `panel[i * P + k]` holds vector `k`'s value at state `i`, so
//!   for a given matrix row the `P` vector values are contiguous and the
//!   inner loop is an unrolled (and, on `x86_64` with AVX, vectorized)
//!   multiply-add over the panel. The panel width `P` is sized so the
//!   input and output panels together fit a slice of L2
//!   (`panel_width`), and the matrix is streamed once per panel instead
//!   of once per vector.
//! * **Sparse union merge** — sparse members are merged over the sorted
//!   union of their supports with an epoch-marked counting-sort scatter
//!   (mark union rows once, sort the deduplicated row list once per step,
//!   bucket each member's `(lane, value)` contributions in O(1) each),
//!   replacing the flatten-and-sort of every `(row, member, value)`
//!   triple the previous kernel paid per step. First-touch detection uses
//!   a per-lane epoch array instead of a `== 0.0` probe, so accumulator
//!   lanes never need clearing between steps.
//!
//! **Bit-identity contract.** Per vector, the floating-point operations
//! and their order are exactly those of a solo
//! [`crate::hybrid::PropagationVector::step`]: ascending source state,
//! then ascending column within each matrix row, with a first touch
//! computed as `0.0 + vi * m` (the literal operation the reference kernel
//! performs on its zeroed accumulator). SIMD and unrolling only ever act
//! *across* independent vectors of a panel, never across the terms of one
//! vector's accumulation, so no sum is reassociated and no FMA contraction
//! is introduced. The proptests in `tests/proptests.rs` pin this contract
//! across panel widths, batch compositions and kernel choices.

use crate::csr::{CsrMatrix, SpmvScratch};
use crate::dense::DenseVector;
use crate::sparse_vec::SparseVector;

/// Batched-kernel selection policy for [`CsrMatrix::step_batch_with_mode`]
/// (the `batching` knob of `ust-core`'s `EngineConfig`).
///
/// Every mode produces bit-for-bit identical results; they differ only in
/// which traversal pays for the product (and therefore in wall time and
/// in the `rows_traversed` accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum KernelMode {
    /// Per-batch heuristic choice (the default): take the shared-union
    /// merge when the sparse members' supports overlap meaningfully or
    /// are large enough for the merge's per-member savings to pay on
    /// their own, and step members individually only for small-support
    /// low-overlap batches; densified members always use the panel
    /// kernel. See `choose_shared_union` for the estimate.
    #[default]
    Auto,
    /// Always merge sparse members over the union of their supports.
    SharedUnion,
    /// Always step members individually (the per-object baseline).
    PerObject,
}

/// Byte budget for one input + output panel pair — a conservative slice
/// of a typical per-core L2 so the hot panel data stays cache-resident
/// while the matrix streams through.
const PANEL_L2_BYTES: usize = 256 * 1024;

/// Width of the SIMD/unrolled lane groups the panel kernels operate on.
pub(crate) const LANE_WIDTH: usize = 4;

/// Panel width (vectors interleaved per panel) for a matrix with `ncols`
/// columns and a batch of `batch` densified vectors: as many lanes as keep
/// `2 × P × ncols` doubles inside [`PANEL_L2_BYTES`], clamped to
/// `[LANE_WIDTH, 64]`, rounded down to a [`LANE_WIDTH`] multiple, and
/// never more than the batch itself.
pub(crate) fn panel_width(ncols: usize, batch: usize) -> usize {
    let by_cache = PANEL_L2_BYTES / (2 * std::mem::size_of::<f64>() * ncols.max(1));
    let p = by_cache.clamp(LANE_WIDTH, 64);
    if p >= batch {
        batch.max(1)
    } else {
        // p >= LANE_WIDTH, so the rounding never reaches zero.
        p & !(LANE_WIDTH - 1)
    }
}

/// Support-overlap heuristic for the sparse half of a batch (the
/// [`KernelMode::Auto`] decision).
///
/// `spans` yields `(first index, last index, nnz)` per sparse member. The
/// union of the supports is estimated as `min(range, Σ nnz)` where `range`
/// is the merged `[min first, max last]` span — on the paper's banded
/// locality workloads supports are near-intervals, so the range is a tight
/// proxy.
///
/// The shared-union merge is chosen when the estimate is at most 90% of
/// the per-object sum (the amortized matrix-row reads pay for the merge
/// bookkeeping), and also — regardless of overlap — once the members'
/// supports average a non-trivial size: past that point the merge's
/// per-member savings (a pooled in-order gather instead of a sort +
/// re-sorting constructor, and no per-step output allocation) beat its
/// O(Σ nnz) bookkeeping even with zero row sharing. Only small-support
/// low-overlap batches step per object, where the bookkeeping is pure
/// overhead on a few dozen entries.
pub(crate) fn choose_shared_union(spans: impl IntoIterator<Item = (u32, u32, usize)>) -> bool {
    let (mut lo, mut hi, mut sum, mut members) = (u32::MAX, 0u32, 0usize, 0usize);
    for (first, last, nnz) in spans {
        lo = lo.min(first);
        hi = hi.max(last);
        sum += nnz;
        members += 1;
    }
    if sum == 0 || lo > hi {
        return false;
    }
    let range = (hi - lo) as usize + 1;
    let est_union = range.min(sum);
    est_union * 10 <= sum * 9 || sum >= 64 * members
}

/// Result of one dense-panel sweep: the stepped vectors, their exact
/// non-zero counts (gathered for free during the unpack pass) and the
/// traversal counters.
pub(crate) struct DensePanelOutput {
    pub outs: Vec<DenseVector>,
    pub nnz: Vec<usize>,
    pub rows_traversed: u64,
    pub entries_touched: u64,
}

/// The dense half of the batched kernel: interleaved multi-vector panels.
///
/// Inputs are packed `LANE_WIDTH`-aligned panels wide ([`panel_width`]);
/// each panel streams the matrix once. Rows where every panel lane is
/// non-zero take the branch-free unrolled update ([`axpy_panel`]); rows
/// with a mix of live and zero lanes fall back to the per-lane loop, which
/// performs exactly the reference operations (a zero lane's multiply-add
/// is *skipped*, as in [`CsrMatrix::vecmat_dense`], keeping bit-identity
/// even for non-finite or signed-zero inputs). Output storage is recycled
/// through `scratch.dense_pool`.
pub(crate) fn step_dense_panels(
    m: &CsrMatrix,
    inputs: &[DenseVector],
    scratch: &mut SpmvScratch,
) -> DensePanelOutput {
    let (nrows, ncols) = m.shape();
    let batch = inputs.len();
    let width = panel_width(ncols, batch);
    let mut out = DensePanelOutput {
        outs: Vec::with_capacity(batch),
        nnz: Vec::with_capacity(batch),
        rows_traversed: 0,
        entries_touched: 0,
    };
    let mut panel_in = std::mem::take(&mut scratch.panel_in);
    let mut panel_out = std::mem::take(&mut scratch.panel_out);
    let mut start = 0;
    while start < batch {
        let lanes = width.min(batch - start);
        // Pack: vector k of the panel lands in stride position k, so one
        // matrix row's vector values are the contiguous run
        // `panel_in[i*lanes .. (i+1)*lanes]`.
        panel_in.clear();
        panel_in.resize(nrows * lanes, 0.0);
        for (k, input) in inputs[start..start + lanes].iter().enumerate() {
            for (i, &v) in input.as_slice().iter().enumerate() {
                panel_in[i * lanes + k] = v;
            }
        }
        panel_out.clear();
        panel_out.resize(ncols * lanes, 0.0);
        for (i, vals_i) in panel_in.chunks_exact(lanes).enumerate() {
            let live = vals_i.iter().filter(|v| **v != 0.0).count();
            if live == 0 {
                continue;
            }
            out.rows_traversed += 1;
            let (cols, mvals) = m.row(i);
            out.entries_touched += cols.len() as u64 * live as u64;
            if live == lanes {
                // Branch-free hot path: every lane is live, so the
                // unconditional update performs exactly the reference ops.
                for (&c, &mv) in cols.iter().zip(mvals) {
                    let base = c as usize * lanes;
                    axpy_panel(&mut panel_out[base..base + lanes], vals_i, mv);
                }
            } else {
                for (k, &vi) in vals_i.iter().enumerate() {
                    if vi == 0.0 {
                        continue;
                    }
                    for (&c, &mv) in cols.iter().zip(mvals) {
                        panel_out[c as usize * lanes + k] += vi * mv;
                    }
                }
            }
        }
        // Unpack, counting non-zeros on the way out (the exact-nnz feed
        // for `PropagationVector`).
        for k in 0..lanes {
            let mut buf = scratch.dense_pool.pop().unwrap_or_default();
            buf.clear();
            buf.reserve(ncols);
            let mut count = 0usize;
            for chunk in panel_out.chunks_exact(lanes) {
                let v = chunk[k];
                if v != 0.0 {
                    count += 1;
                }
                // lint: allow(alloc-in-kernel-hot-loop) — buf is pool-recycled and reserved to ncols above
                buf.push(v);
            }
            // lint: allow(alloc-in-kernel-hot-loop) — outs is with_capacity(batch); one push per lane, not per element
            out.outs.push(DenseVector::from_vec(buf));
            // lint: allow(alloc-in-kernel-hot-loop) — nnz is with_capacity(batch); one push per lane, not per element
            out.nnz.push(count);
        }
        start += lanes;
    }
    scratch.panel_in = panel_in;
    scratch.panel_out = panel_out;
    out
}

/// `out[k] += vals[k] * m` across a panel row — the only loop SIMD ever
/// touches. Element-wise with separate multiply and add (never FMA), so
/// each lane's operation is bitwise the scalar reference.
#[inline]
pub(crate) fn axpy_panel(out: &mut [f64], vals: &[f64], m: f64) {
    #[cfg(target_arch = "x86_64")]
    {
        if out.len() >= LANE_WIDTH && std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX availability was just checked.
            unsafe { axpy_panel_avx(out, vals, m) };
            return;
        }
    }
    axpy_panel_scalar(out, vals, m);
}

/// Portable 4-wide unrolled fallback for [`axpy_panel`].
#[inline]
fn axpy_panel_scalar(out: &mut [f64], vals: &[f64], m: f64) {
    let mut o = out.chunks_exact_mut(LANE_WIDTH);
    let mut v = vals.chunks_exact(LANE_WIDTH);
    for (oc, vc) in (&mut o).zip(&mut v) {
        oc[0] += vc[0] * m;
        oc[1] += vc[1] * m;
        oc[2] += vc[2] * m;
        oc[3] += vc[3] * m;
    }
    for (oo, &vv) in o.into_remainder().iter_mut().zip(v.remainder()) {
        *oo += vv * m;
    }
}

/// AVX path for [`axpy_panel`]: 4 doubles per step with distinct
/// `_mm256_mul_pd` + `_mm256_add_pd` (no fused multiply-add, preserving
/// the scalar rounding per element).
///
/// # Safety
/// Caller must ensure the `avx` target feature is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn axpy_panel_avx(out: &mut [f64], vals: &[f64], m: f64) {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
    };
    let mv = _mm256_set1_pd(m);
    let chunks = out.len() / LANE_WIDTH;
    for idx in 0..chunks {
        // SAFETY: idx * LANE_WIDTH + LANE_WIDTH <= len for both slices
        // (vals is at least as long as out's panel row by construction).
        unsafe {
            let o = out.as_mut_ptr().add(idx * LANE_WIDTH);
            let v = vals.as_ptr().add(idx * LANE_WIDTH);
            let prod = _mm256_mul_pd(_mm256_loadu_pd(v), mv);
            _mm256_storeu_pd(o, _mm256_add_pd(_mm256_loadu_pd(o), prod));
        }
    }
    for k in chunks * LANE_WIDTH..out.len() {
        out[k] += vals[k] * m;
    }
}

/// Result of one sparse shared-union sweep.
pub(crate) struct SparseUnionOutput {
    pub outs: Vec<SparseVector>,
    pub rows_traversed: u64,
    pub entries_touched: u64,
}

/// The sparse half of the batched kernel: one pass over the sorted union
/// of the members' supports.
///
/// The union is built with a counting-sort layout rather than a cursor
/// heap — a heap pays O(log batch) per `(member, row)` contribution, which
/// on the locality workloads is millions of push/pop pairs per query and
/// was the dominant cost of the first version of this kernel:
///
/// 1. **Mark** — every member's rows are stamped into an epoch-marked row
///    set (`scratch.merge_epoch`); the first member to touch a row appends
///    it to the union list, and a per-row counter sizes its bucket.
/// 2. **Order once** — the deduplicated union is put in ascending order:
///    a mark-scan over its span when dense within it (the banded locality
///    workloads), a sort when scattered.
/// 3. **Scatter** — each member's contributions are written into their
///    row's bucket in O(1) each, as bare lane ids; values are replayed
///    through per-lane cursors during the sweep.
/// 4. **Sweep** — union rows are visited in ascending order; each matrix
///    row is streamed exactly once and every bucketed contribution
///    accumulates into its member's lane.
///
/// Members are independent accumulators, so bucket order within a row is
/// irrelevant; per member, rows arrive ascending (the union is sorted) and
/// columns ascending within each row — exactly the reference order.
/// First-touch tracking uses the lanes' epoch arrays
/// (`scratch.lanes_epoch`), so no accumulator is ever cleared — a slot is
/// live iff its epoch matches the sweep's stamp. Output index/value
/// storage is recycled through `scratch.sparse_pool`.
pub(crate) fn step_sparse_union(
    m: &CsrMatrix,
    inputs: &[SparseVector],
    scratch: &mut SpmvScratch,
) -> SparseUnionOutput {
    let (nrows, ncols) = m.shape();
    let members = inputs.len();
    let mut out = SparseUnionOutput {
        outs: Vec::with_capacity(members),
        rows_traversed: 0,
        entries_touched: 0,
    };
    let row_stamp = scratch.merge_epoch(nrows);
    let mut union_rows = std::mem::take(&mut scratch.merge_rows);
    let mut marks = std::mem::take(&mut scratch.merge_marks);
    let mut bucket = std::mem::take(&mut scratch.merge_bucket);
    let mut events = std::mem::take(&mut scratch.merge_events);
    let mut cursors = std::mem::take(&mut scratch.merge_cursor);
    let mut pool = std::mem::take(&mut scratch.sparse_pool);

    // 1. Mark union rows and count contributions per row.
    union_rows.clear();
    let mut total = 0usize;
    let (mut lo, mut hi) = (u32::MAX, 0u32);
    for v in inputs {
        let idx = v.indices();
        total += idx.len();
        if let (Some(&first), Some(&last)) = (idx.first(), idx.last()) {
            lo = lo.min(first);
            hi = hi.max(last);
        }
        for &r in idx {
            let ru = r as usize;
            if marks[ru] == row_stamp {
                bucket[ru] += 1;
            } else {
                marks[ru] = row_stamp;
                bucket[ru] = 1;
                // lint: allow(alloc-in-kernel-hot-loop) — union_rows is the scratch-recycled merge_rows buffer; it grows to the union size once, then recycles
                union_rows.push(r);
            }
        }
    }
    // 2. Put the deduplicated union in ascending order. When the union is
    // dense within its span — the locality workloads, where the members'
    // banded supports overlap — a linear scan over the epoch marks
    // rebuilds it sorted for O(span); only a scattered union pays a sort.
    if !union_rows.is_empty() {
        let span = (hi - lo) as usize + 1;
        if span <= union_rows.len().saturating_mul(8) {
            union_rows.clear();
            for r in lo..=hi {
                if marks[r as usize] == row_stamp {
                    // lint: allow(alloc-in-kernel-hot-loop) — rebuilds into the already-sized scratch buffer just cleared above; no growth
                    union_rows.push(r);
                }
            }
        } else {
            union_rows.sort_unstable();
        }
    }
    // Bucket counters become running cursors (exclusive prefix sum in
    // union order); after the scatter each counter sits at its bucket end.
    let mut offset = 0u32;
    for &r in &union_rows {
        let count = bucket[r as usize];
        bucket[r as usize] = offset;
        offset += count;
    }
    // 3. Scatter every contribution's lane id into its row bucket. Values
    // are *not* scattered: the sweep visits rows ascending, so each lane's
    // values are consumed in exactly their stored order and a per-lane
    // cursor replays them sequentially — half the event traffic.
    events.clear();
    events.resize(total, 0u32);
    for (b, v) in inputs.iter().enumerate() {
        for &r in v.indices() {
            let slot = &mut bucket[r as usize];
            events[*slot as usize] = b as u32;
            *slot += 1;
        }
    }
    cursors.clear();
    cursors.resize(members, 0u32);

    // 4. Sweep the union in ascending row order, streaming each matrix
    // row exactly once.
    {
        let (lanes, stamp) = scratch.lanes_epoch(members, ncols);
        let mut begin = 0usize;
        for &i in &union_rows {
            let end = bucket[i as usize] as usize;
            let (cols, mvals) = m.row(i as usize);
            out.rows_traversed += 1;
            out.entries_touched += cols.len() as u64 * (end - begin) as u64;
            for &b in &events[begin..end] {
                let bu = b as usize;
                let cursor = cursors[bu] as usize;
                let vi = inputs[bu].values()[cursor];
                cursors[bu] = (cursor + 1) as u32;
                let lane = &mut lanes[bu];
                // SAFETY: every stored CSR column index is `< ncols`
                // (enforced by `CsrMatrix::from_raw_parts` and maintained
                // by all other constructors), and `lanes_epoch` sized
                // `acc`/`epoch` to `ncols` — so `cu` is in bounds for
                // both arrays. Eliding the two bounds checks matters:
                // this loop runs once per matrix entry per contribution.
                unsafe {
                    let acc = lane.acc.as_mut_ptr();
                    let epoch = lane.epoch.as_mut_ptr();
                    for (&c, &mv) in cols.iter().zip(mvals) {
                        let cu = c as usize;
                        if *epoch.add(cu) == stamp {
                            *acc.add(cu) += vi * mv;
                        } else {
                            *epoch.add(cu) = stamp;
                            // The literal first-touch operation of the
                            // reference kernel (a zeroed slot plus the
                            // term): `0.0 + x` is *not* the identity for
                            // x = -0.0, so spelling it out keeps
                            // bit-identity.
                            *acc.add(cu) = 0.0 + vi * mv;
                            // lint: allow(alloc-in-kernel-hot-loop) — touched is the lane's scratch-recycled first-touch list; one push per distinct column
                            lane.touched.push(c);
                            lane.lo = lane.lo.min(c);
                            lane.hi = lane.hi.max(c);
                        }
                    }
                }
            }
            begin = end;
        }
        for lane in lanes.iter_mut().take(members) {
            let (mut indices, mut values) = pool.pop().unwrap_or_default();
            indices.clear();
            values.clear();
            indices.reserve(lane.touched.len());
            values.reserve(lane.touched.len());
            let span = if lane.touched.is_empty() { 0 } else { (lane.hi - lane.lo) as usize + 1 };
            if span > 0 && span <= lane.touched.len().saturating_mul(8) {
                // On the locality workloads a lane's touched set converges
                // to a (near-)contiguous interval: an in-order scan of the
                // span — epoch marks say which slots are live — replaces
                // the O(n log n) sort with a sequential O(span) sweep.
                for cu in lane.lo as usize..=lane.hi as usize {
                    if lane.epoch[cu] == stamp {
                        let v = lane.acc[cu];
                        if v != 0.0 {
                            // lint: allow(alloc-in-kernel-hot-loop) — reserved to touched.len() above
                            indices.push(cu as u32);
                            // lint: allow(alloc-in-kernel-hot-loop) — reserved to touched.len() above
                            values.push(v);
                        }
                    }
                }
            } else {
                lane.touched.sort_unstable();
                for &c in &lane.touched {
                    let v = lane.acc[c as usize];
                    if v != 0.0 {
                        // lint: allow(alloc-in-kernel-hot-loop) — reserved to touched.len() above
                        indices.push(c);
                        // lint: allow(alloc-in-kernel-hot-loop) — reserved to touched.len() above
                        values.push(v);
                    }
                }
            }
            // lint: allow(alloc-in-kernel-hot-loop) — outs is with_capacity(members); one push per member, not per element
            out.outs.push(SparseVector::from_sorted_parts(ncols, indices, values));
        }
    }
    scratch.merge_rows = union_rows;
    scratch.merge_marks = marks;
    scratch.merge_bucket = bucket;
    scratch.merge_events = events;
    scratch.merge_cursor = cursors;
    scratch.sparse_pool = pool;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_width_respects_cache_budget_and_batch() {
        // Tiny matrices: the whole batch fits one panel.
        assert_eq!(panel_width(3, 2), 2);
        assert_eq!(panel_width(3, 64), 64);
        // Large state spaces clamp to the minimum lane group.
        assert_eq!(panel_width(1_000_000, 128), LANE_WIDTH);
        // Mid sizes are LANE_WIDTH multiples below the batch.
        let p = panel_width(10_000, 128);
        assert!(p >= LANE_WIDTH && p.is_multiple_of(LANE_WIDTH) && p <= 128);
        // Degenerate batch.
        assert_eq!(panel_width(10, 0), 1);
    }

    #[test]
    fn heuristic_prefers_union_on_overlap() {
        // Two members over the same narrow band: union ≈ range ≪ sum.
        assert!(choose_shared_union([(10, 20, 8), (12, 22, 8)]));
        // Disjoint far-apart supports: range is huge, union = sum.
        assert!(!choose_shared_union([(0, 4, 5), (10_000, 10_004, 5)]));
        // Borderline: est_union must be ≤ 90% of the sum.
        assert!(choose_shared_union([(0, 8, 5), (0, 8, 5)])); // 9 ≤ 0.9·10
        assert!(!choose_shared_union([(0, 9, 5), (0, 9, 5)])); // 10 > 0.9·10
        assert!(!choose_shared_union(std::iter::empty()));
    }

    #[test]
    fn axpy_paths_agree_bitwise() {
        let vals: Vec<f64> = (0..13).map(|k| 0.1 + k as f64 * 0.07).collect();
        let m = 0.37;
        let mut a: Vec<f64> = (0..13).map(|k| k as f64 * 0.01).collect();
        let mut b = a.clone();
        axpy_panel(&mut a, &vals, m);
        axpy_panel_scalar(&mut b, &vals, m);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
