//! Adaptive sparse→dense propagation vectors.
//!
//! An object's location distribution starts with a handful of non-zero
//! entries (the paper's `object_spread` defaults to 5) and fans out by at
//! most `state_spread` successors per step, so early transitions are far
//! cheaper on a sparse vector. As the chain mixes, the vector densifies and
//! sparse bookkeeping becomes pure overhead — beyond roughly 1/4 fill, a
//! dense kernel is faster and allocation-free. [`PropagationVector`] switches
//! representation automatically at a configurable density threshold.
//!
//! This is the "hybrid" design choice ablated in `bench/ablation_hybrid`.

use crate::csr::{CsrMatrix, SpmvScratch};
use crate::dense::DenseVector;
use crate::error::{MarkovError, Result};
use crate::mask::StateMask;
use crate::sparse_vec::SparseVector;

/// Density above which the vector flips to the dense representation.
pub const DEFAULT_DENSIFY_THRESHOLD: f64 = 0.25;

/// Work counters reported by one [`CsrMatrix::step_batch`] call.
///
/// `rows_traversed` counts *matrix-row reads*: how many times a row's
/// `(columns, values)` pair was streamed from memory. It is the unit the
/// batched kernel amortizes — `B` densified vectors stepped together read
/// each touched matrix row once instead of `B` times — and the quantity the
/// `pr2_batching` benchmark compares against the per-object baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStepStats {
    /// Matrix rows streamed during this batched transition.
    pub rows_traversed: u64,
    /// Vectors that performed a transition (rows with no mass are skipped).
    pub vectors_stepped: u64,
}

impl BatchStepStats {
    /// Accumulates another report into this one.
    pub fn merge(&mut self, other: BatchStepStats) {
        self.rows_traversed += other.rows_traversed;
        self.vectors_stepped += other.vectors_stepped;
    }
}

impl CsrMatrix {
    /// Batched transition `v ← v · M` for many propagation vectors sharing
    /// one matrix traversal.
    ///
    /// `active` enables per-row early exit: when non-empty it must have one
    /// flag per row, and rows flagged `false` (decided objects) are left
    /// untouched without stopping the sweep; an empty slice means all rows
    /// are active. Rows with no mass are always skipped.
    ///
    /// Both representations share the traversal. Sparse rows are merged
    /// over the sorted **union of their supports**: each matrix row in the
    /// union is streamed once and feeds every member whose vector is
    /// non-zero there (on locality workloads the reachable sets of nearby
    /// objects overlap heavily, so the union is far smaller than the sum of
    /// supports). Densified rows are stepped together, row-major over the
    /// whole matrix. Per vector, the floating-point operations and their
    /// order are **identical** to an individual [`PropagationVector::step`]
    /// — batched evaluation is bit-for-bit equal to the per-object path
    /// regardless of batch composition.
    pub fn step_batch(
        &self,
        rows: &mut [PropagationVector],
        active: &[bool],
        scratch: &mut SpmvScratch,
    ) -> Result<BatchStepStats> {
        if !active.is_empty() && active.len() != rows.len() {
            return Err(MarkovError::DimensionMismatch {
                op: "step_batch activity mask",
                expected: rows.len(),
                found: active.len(),
            });
        }
        let mut stats = BatchStepStats::default();
        // The member lists live in the scratch pool — one allocation per
        // sweep, not one per timestamp. Taken out for the duration of the
        // call so the scratch stays borrowable by the kernels.
        let mut sparse_members = std::mem::take(&mut scratch.members_sparse);
        let mut dense_members = std::mem::take(&mut scratch.members_dense);
        sparse_members.clear();
        dense_members.clear();
        for (r, row) in rows.iter().enumerate() {
            if (!active.is_empty() && !active[r]) || row.nnz() == 0 {
                continue;
            }
            if row.dim() != self.nrows() {
                return Err(MarkovError::DimensionMismatch {
                    op: "step_batch",
                    expected: self.nrows(),
                    found: row.dim(),
                });
            }
            stats.vectors_stepped += 1;
            match &row.repr {
                Repr::Sparse(_) => sparse_members.push(r),
                Repr::Dense(_) => dense_members.push(r),
            }
        }

        let result = (|| {
            if sparse_members.len() == 1 {
                // Nothing to share: take the direct sparse product
                // (identical operations, none of the batching bookkeeping).
                let r = sparse_members[0];
                stats.rows_traversed += rows[r].nnz() as u64;
                rows[r].step(self, scratch)?;
            } else if !sparse_members.is_empty() {
                self.step_sparse_union(rows, &sparse_members, scratch, &mut stats)?;
            }
            if !dense_members.is_empty() {
                self.step_dense_shared(rows, &dense_members, scratch, &mut stats);
            }
            Ok(stats)
        })();
        scratch.members_sparse = sparse_members;
        scratch.members_dense = dense_members;
        result
    }

    /// The sparse half of the batched kernel: a k-way merge over the
    /// members' sorted supports streams each matrix row of the union once.
    /// Each member accumulates into its own scratch lane in its own
    /// ascending-support order — the exact operation sequence of
    /// [`CsrMatrix::vecmat_sparse_with`].
    fn step_sparse_union(
        &self,
        rows: &mut [PropagationVector],
        members: &[usize],
        scratch: &mut SpmvScratch,
        stats: &mut BatchStepStats,
    ) -> Result<()> {
        let inputs: Vec<SparseVector> = members
            .iter()
            .map(|&r| {
                let placeholder = Repr::Dense(DenseVector::zeros(0));
                match std::mem::replace(&mut rows[r].repr, placeholder) {
                    Repr::Sparse(v) => v,
                    Repr::Dense(_) => unreachable!("membership established by step_batch"),
                }
            })
            .collect();
        // Flatten every member's (source row, member, value) triples and
        // sort by row: runs of equal rows become one matrix-row read.
        // The unstable sort is safe — a member holds each row at most
        // once, so its triples stay in ascending row order regardless of
        // how ties between *different* members are broken. The buffer is
        // pooled in the scratch (one allocation per sweep).
        let mut entries = std::mem::take(&mut scratch.batch_entries);
        entries.clear();
        entries.reserve(inputs.iter().map(|v| v.nnz()).sum());
        for (b, v) in inputs.iter().enumerate() {
            for (&i, &vi) in v.indices().iter().zip(v.values()) {
                entries.push((i, b as u32, vi));
            }
        }
        entries.sort_unstable_by_key(|&(i, _, _)| i);
        let lanes = scratch.lanes(inputs.len(), self.ncols());

        let mut run = 0;
        while run < entries.len() {
            let i = entries[run].0;
            let (cols, vals) = self.row(i as usize);
            stats.rows_traversed += 1;
            while run < entries.len() && entries[run].0 == i {
                let (_, b, vi) = entries[run];
                run += 1;
                let (acc, touched) = &mut lanes[b as usize];
                for (&c, &m) in cols.iter().zip(vals) {
                    let slot = &mut acc[c as usize];
                    if *slot == 0.0 {
                        touched.push(c);
                    }
                    *slot += vi * m;
                }
            }
        }
        for (b, &r) in members.iter().enumerate() {
            let (acc, touched) = &mut lanes[b];
            touched.sort_unstable();
            let mut pairs = Vec::with_capacity(touched.len());
            for &c in touched.iter() {
                let val = acc[c as usize];
                acc[c as usize] = 0.0;
                if val != 0.0 {
                    pairs.push((c as usize, val));
                }
            }
            let next = SparseVector::from_pairs(self.ncols(), pairs)?;
            rows[r].repr = if next.density() > rows[r].densify_at {
                Repr::Dense(next.to_dense())
            } else {
                Repr::Sparse(next)
            };
        }
        scratch.batch_entries = entries;
        Ok(())
    }

    /// The dense half of the batched kernel: stream each matrix row once,
    /// feeding every densified vector. The per-vector accumulation order
    /// (ascending source state, ascending column within the row) matches
    /// [`CsrMatrix::vecmat_dense`] exactly. Output storage comes from the
    /// scratch's recycled buffer pool and the inputs' storage goes back
    /// into it, so a steady-state sweep performs no allocations here.
    fn step_dense_shared(
        &self,
        rows: &mut [PropagationVector],
        members: &[usize],
        scratch: &mut SpmvScratch,
        stats: &mut BatchStepStats,
    ) {
        let mut inputs: Vec<DenseVector> = Vec::with_capacity(members.len());
        for &r in members {
            let placeholder = Repr::Sparse(SparseVector::zeros(self.nrows()));
            match std::mem::replace(&mut rows[r].repr, placeholder) {
                Repr::Dense(v) => inputs.push(v),
                Repr::Sparse(_) => unreachable!("membership established by step_batch"),
            }
        }
        let mut outs: Vec<DenseVector> = (0..members.len())
            .map(|_| {
                let mut buf = scratch.dense_pool.pop().unwrap_or_default();
                buf.clear();
                buf.resize(self.ncols(), 0.0);
                DenseVector::from_vec(buf)
            })
            .collect();
        for i in 0..self.nrows() {
            let (cols, vals) = self.row(i);
            let mut touched = false;
            for (k, input) in inputs.iter().enumerate() {
                let vi = input.as_slice()[i];
                if vi == 0.0 {
                    continue;
                }
                touched = true;
                let out = outs[k].as_mut_slice();
                for (&c, &m) in cols.iter().zip(vals) {
                    out[c as usize] += vi * m;
                }
            }
            if touched {
                stats.rows_traversed += 1;
            }
        }
        for (&r, out) in members.iter().zip(outs) {
            rows[r].repr = Repr::Dense(out);
        }
        for input in inputs {
            scratch.dense_pool.push(input.into_vec());
        }
    }
}

/// The two physical representations of a propagation vector.
#[derive(Debug, Clone, PartialEq)]
enum Repr {
    Sparse(SparseVector),
    Dense(DenseVector),
}

/// A probability vector that propagates through transition matrices,
/// choosing its representation adaptively.
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationVector {
    repr: Repr,
    densify_at: f64,
}

impl PropagationVector {
    /// Starts from a sparse distribution with the default threshold.
    pub fn from_sparse(v: SparseVector) -> Self {
        PropagationVector { repr: Repr::Sparse(v), densify_at: DEFAULT_DENSIFY_THRESHOLD }
    }

    /// Starts from a dense distribution (never converts back to sparse).
    pub fn from_dense(v: DenseVector) -> Self {
        PropagationVector { repr: Repr::Dense(v), densify_at: DEFAULT_DENSIFY_THRESHOLD }
    }

    /// Overrides the densification threshold.
    ///
    /// `1.0` (or anything ≥ 1) keeps the vector sparse forever; `0.0`
    /// densifies on the first step. Used by the ablation benchmarks.
    pub fn with_densify_threshold(mut self, threshold: f64) -> Self {
        self.densify_at = threshold;
        self
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        match &self.repr {
            Repr::Sparse(v) => v.dim(),
            Repr::Dense(v) => v.dim(),
        }
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        match &self.repr {
            Repr::Sparse(v) => v.nnz(),
            Repr::Dense(v) => v.nnz(),
        }
    }

    /// True while the sparse representation is active.
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Total mass (sum of entries).
    pub fn sum(&self) -> f64 {
        match &self.repr {
            Repr::Sparse(v) => v.sum(),
            Repr::Dense(v) => v.sum(),
        }
    }

    /// Value at a single state.
    pub fn get(&self, index: usize) -> f64 {
        match &self.repr {
            Repr::Sparse(v) => v.get(index),
            Repr::Dense(v) => v.get(index),
        }
    }

    /// One transition `v ← v · M`, switching representation if the result
    /// crosses the density threshold.
    pub fn step(&mut self, matrix: &CsrMatrix, scratch: &mut SpmvScratch) -> Result<()> {
        match &self.repr {
            Repr::Sparse(v) => {
                let next = matrix.vecmat_sparse_with(v, scratch)?;
                if next.density() > self.densify_at {
                    self.repr = Repr::Dense(next.to_dense());
                } else {
                    self.repr = Repr::Sparse(next);
                }
            }
            Repr::Dense(v) => {
                self.repr = Repr::Dense(matrix.vecmat_dense(v)?);
            }
        }
        Ok(())
    }

    /// Sum of the mass currently inside `mask`.
    pub fn masked_sum(&self, mask: &StateMask) -> f64 {
        match &self.repr {
            Repr::Sparse(v) => v.masked_sum(mask),
            Repr::Dense(v) => v.masked_sum(mask),
        }
    }

    /// Removes and returns the mass inside `mask` — the virtual application
    /// of the `M+` redirect-to-⊤ column surgery.
    pub fn extract_masked(&mut self, mask: &StateMask) -> f64 {
        match &mut self.repr {
            Repr::Sparse(v) => v.extract_masked(mask),
            Repr::Dense(v) => v.extract_masked(mask),
        }
    }

    /// Removes the entries inside `mask`, returning them as a sparse vector
    /// (the k-times level shift of Section VII).
    pub fn split_masked(&mut self, mask: &StateMask) -> SparseVector {
        match &mut self.repr {
            Repr::Sparse(v) => v.split_masked(mask),
            Repr::Dense(v) => v.split_masked(mask),
        }
    }

    /// Adds a sparse vector into this one (in place).
    pub fn add_sparse(&mut self, other: &SparseVector) -> Result<()> {
        if other.dim() != self.dim() {
            return Err(MarkovError::DimensionMismatch {
                op: "propagation add",
                expected: self.dim(),
                found: other.dim(),
            });
        }
        match &mut self.repr {
            Repr::Sparse(v) => {
                let merged = v.add(other)?;
                if merged.density() > self.densify_at {
                    self.repr = Repr::Dense(merged.to_dense());
                } else {
                    self.repr = Repr::Sparse(merged);
                }
            }
            Repr::Dense(v) => {
                let slice = v.as_mut_slice();
                for (i, val) in other.iter() {
                    slice[i] += val;
                }
            }
        }
        Ok(())
    }

    /// Element-wise multiplication with an observation likelihood (Lemma 1
    /// fusion). The result keeps the current representation.
    pub fn hadamard_sparse(&mut self, obs: &SparseVector) -> Result<()> {
        if obs.dim() != self.dim() {
            return Err(MarkovError::DimensionMismatch {
                op: "observation fusion",
                expected: self.dim(),
                found: obs.dim(),
            });
        }
        match &mut self.repr {
            Repr::Sparse(v) => {
                *v = v.hadamard(obs)?;
            }
            Repr::Dense(v) => {
                // Posterior support is a subset of the observation support,
                // so the result is sparse regardless of the prior's density.
                let pairs: Vec<(usize, f64)> = obs
                    .iter()
                    .map(|(i, likelihood)| (i, likelihood * v.get(i)))
                    .filter(|(_, p)| *p != 0.0)
                    .collect();
                let sparse = SparseVector::from_pairs(v.dim(), pairs)?;
                if sparse.density() > self.densify_at {
                    self.repr = Repr::Dense(sparse.to_dense());
                } else {
                    self.repr = Repr::Sparse(sparse);
                }
            }
        }
        Ok(())
    }

    /// Scales all entries by `factor` (joint renormalization across the
    /// hit/not-hit pair of vectors is done by the caller).
    pub fn scale(&mut self, factor: f64) {
        match &mut self.repr {
            Repr::Sparse(v) => v.scale(factor),
            Repr::Dense(v) => v.scale(factor),
        }
    }

    /// ε-pruning: drops entries with `|v| ≤ threshold`, returning the
    /// dropped mass. Only meaningful on the sparse representation; a dense
    /// vector is left untouched (dropping entries would not shrink it).
    pub fn prune(&mut self, threshold: f64) -> f64 {
        match &mut self.repr {
            Repr::Sparse(v) => v.prune(threshold),
            Repr::Dense(_) => 0.0,
        }
    }

    /// Dot product against a dense vector (e.g. a QB backward vector).
    pub fn dot_dense(&self, other: &DenseVector) -> Result<f64> {
        match &self.repr {
            Repr::Sparse(v) => v.dot_dense(other),
            Repr::Dense(v) => v.dot(other),
        }
    }

    /// Materializes the current state as a dense vector.
    pub fn to_dense(&self) -> DenseVector {
        match &self.repr {
            Repr::Sparse(v) => v.to_dense(),
            Repr::Dense(v) => v.clone(),
        }
    }

    /// Materializes the current state as a sparse vector.
    pub fn to_sparse(&self) -> SparseVector {
        match &self.repr {
            Repr::Sparse(v) => v.clone(),
            Repr::Dense(v) => SparseVector::from_dense(v, 0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_matrix() -> CsrMatrix {
        CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
            .unwrap()
    }

    #[test]
    fn sparse_start_densifies_at_threshold() {
        let m = paper_matrix();
        let mut scratch = SpmvScratch::new();
        let mut v = PropagationVector::from_sparse(SparseVector::unit(3, 1).unwrap())
            .with_densify_threshold(0.5);
        assert!(v.is_sparse());
        v.step(&m, &mut scratch).unwrap(); // (0.6, 0, 0.4): density 2/3 > 0.5
        assert!(!v.is_sparse());
        assert!(v.to_dense().approx_eq(&DenseVector::from_vec(vec![0.6, 0.0, 0.4]), 1e-12));
    }

    #[test]
    fn threshold_one_stays_sparse() {
        let m = paper_matrix();
        let mut scratch = SpmvScratch::new();
        let mut v = PropagationVector::from_sparse(SparseVector::unit(3, 1).unwrap())
            .with_densify_threshold(1.0);
        for _ in 0..10 {
            v.step(&m, &mut scratch).unwrap();
            assert!(v.is_sparse());
        }
        assert!((v.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_and_dense_propagation_agree() {
        let m = paper_matrix();
        let mut scratch = SpmvScratch::new();
        let mut sparse = PropagationVector::from_sparse(SparseVector::unit(3, 0).unwrap())
            .with_densify_threshold(1.0);
        let mut dense = PropagationVector::from_dense(DenseVector::unit(3, 0).unwrap());
        for _ in 0..7 {
            sparse.step(&m, &mut scratch).unwrap();
            dense.step(&m, &mut scratch).unwrap();
            assert!(sparse.to_dense().approx_eq(&dense.to_dense(), 1e-12));
        }
    }

    #[test]
    fn extract_masked_moves_mass_in_both_representations() {
        let mask = StateMask::from_indices(3, [0usize]).unwrap();
        let mut sparse = PropagationVector::from_sparse(
            SparseVector::from_pairs(3, [(0, 0.3), (2, 0.7)]).unwrap(),
        );
        assert!((sparse.extract_masked(&mask) - 0.3).abs() < 1e-12);
        assert!((sparse.sum() - 0.7).abs() < 1e-12);

        let mut dense = PropagationVector::from_dense(DenseVector::from_vec(vec![0.3, 0.0, 0.7]));
        assert!((dense.extract_masked(&mask) - 0.3).abs() < 1e-12);
        assert!((dense.masked_sum(&mask)).abs() < 1e-12);
    }

    #[test]
    fn hadamard_fusion_on_dense_resparsifies() {
        let mut v = PropagationVector::from_dense(DenseVector::from_vec(vec![0.2, 0.5, 0.3]))
            .with_densify_threshold(0.5);
        let obs = SparseVector::from_pairs(3, [(1, 0.5)]).unwrap();
        v.hadamard_sparse(&obs).unwrap();
        assert!(v.is_sparse());
        assert!((v.get(1) - 0.25).abs() < 1e-12);
        assert_eq!(v.nnz(), 1);
        let bad = SparseVector::zeros(5);
        assert!(v.hadamard_sparse(&bad).is_err());
    }

    #[test]
    fn prune_only_affects_sparse() {
        let mut sparse = PropagationVector::from_sparse(
            SparseVector::from_pairs(4, [(0, 1e-12), (1, 0.9)]).unwrap(),
        );
        assert!(sparse.prune(1e-9) > 0.0);
        assert_eq!(sparse.nnz(), 1);
        let mut dense = PropagationVector::from_dense(DenseVector::from_vec(vec![1e-12, 0.9]));
        assert_eq!(dense.prune(1e-9), 0.0);
        assert_eq!(dense.nnz(), 2);
    }

    #[test]
    fn dot_dense_works_in_both_representations() {
        let backward = DenseVector::from_vec(vec![0.96, 0.864, 0.928]);
        let sparse = PropagationVector::from_sparse(SparseVector::unit(3, 1).unwrap());
        assert!((sparse.dot_dense(&backward).unwrap() - 0.864).abs() < 1e-12);
        let dense = PropagationVector::from_dense(DenseVector::unit(3, 1).unwrap());
        assert!((dense.dot_dense(&backward).unwrap() - 0.864).abs() < 1e-12);
    }

    #[test]
    fn split_masked_and_add_sparse_roundtrip() {
        let mask = StateMask::from_indices(4, [1usize, 2]).unwrap();
        for mut v in [
            PropagationVector::from_sparse(
                SparseVector::from_pairs(4, [(0, 0.1), (1, 0.2), (2, 0.3), (3, 0.4)]).unwrap(),
            )
            .with_densify_threshold(1.0),
            PropagationVector::from_dense(DenseVector::from_vec(vec![0.1, 0.2, 0.3, 0.4])),
        ] {
            let split = v.split_masked(&mask);
            assert!((split.sum() - 0.5).abs() < 1e-12);
            assert!((v.sum() - 0.5).abs() < 1e-12);
            assert_eq!(v.get(1), 0.0);
            v.add_sparse(&split).unwrap();
            assert!((v.sum() - 1.0).abs() < 1e-12);
            assert!((v.get(2) - 0.3).abs() < 1e-12);
            assert!(v.add_sparse(&SparseVector::zeros(9)).is_err());
        }
    }

    #[test]
    fn scale_applies_uniformly() {
        let mut v = PropagationVector::from_sparse(
            SparseVector::from_pairs(3, [(0, 0.5), (1, 0.5)]).unwrap(),
        );
        v.scale(2.0);
        assert!((v.sum() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn step_batch_is_bit_identical_to_individual_steps() {
        let m = paper_matrix();
        let mut scratch = SpmvScratch::new();
        // A mixed batch: one sparse-forever row, one densifying row, one
        // already-dense row and one empty row.
        let mut batch = vec![
            PropagationVector::from_sparse(SparseVector::unit(3, 1).unwrap())
                .with_densify_threshold(1.0),
            PropagationVector::from_sparse(SparseVector::unit(3, 0).unwrap())
                .with_densify_threshold(0.3),
            PropagationVector::from_dense(DenseVector::from_vec(vec![0.25, 0.5, 0.25])),
            PropagationVector::from_sparse(SparseVector::zeros(3)),
        ];
        let mut solo = batch.clone();
        for _ in 0..6 {
            let stats = m.step_batch(&mut batch, &[], &mut scratch).unwrap();
            assert_eq!(stats.vectors_stepped, 3, "empty row skipped");
            for row in solo.iter_mut() {
                if row.nnz() > 0 {
                    row.step(&m, &mut scratch).unwrap();
                }
            }
            for (a, b) in batch.iter().zip(&solo) {
                assert_eq!(a.is_sparse(), b.is_sparse());
                let (da, db) = (a.to_dense(), b.to_dense());
                for s in 0..3 {
                    assert_eq!(da.get(s).to_bits(), db.get(s).to_bits(), "state {s}");
                }
            }
        }
    }

    #[test]
    fn step_batch_shares_dense_row_traversals() {
        let m = paper_matrix();
        let mut scratch = SpmvScratch::new();
        let mut batch = vec![
            PropagationVector::from_dense(DenseVector::from_vec(vec![0.2, 0.3, 0.5])),
            PropagationVector::from_dense(DenseVector::from_vec(vec![0.5, 0.3, 0.2])),
        ];
        let shared = m.step_batch(&mut batch, &[], &mut scratch).unwrap();
        // Two full dense vectors over 3 matrix rows: the shared traversal
        // reads each row once (3), the per-object path twice (6).
        assert_eq!(shared.rows_traversed, 3);
        let mut solo =
            vec![PropagationVector::from_dense(DenseVector::from_vec(vec![0.2, 0.3, 0.5]))];
        let alone = m.step_batch(&mut solo, &[], &mut scratch).unwrap();
        assert_eq!(alone.rows_traversed, 3);
    }

    #[test]
    fn step_batch_shares_overlapping_sparse_supports() {
        let m = CsrMatrix::from_dense(&[
            vec![0.5, 0.5, 0.0, 0.0],
            vec![0.0, 0.5, 0.5, 0.0],
            vec![0.0, 0.0, 0.5, 0.5],
            vec![0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap();
        let mut scratch = SpmvScratch::new();
        // Supports {0, 1} and {1, 2}: the union {0, 1, 2} is 3 matrix-row
        // reads, the per-object sum is 4.
        let mut batch = vec![
            PropagationVector::from_sparse(
                SparseVector::from_pairs(4, [(0, 0.5), (1, 0.5)]).unwrap(),
            )
            .with_densify_threshold(1.0),
            PropagationVector::from_sparse(
                SparseVector::from_pairs(4, [(1, 0.5), (2, 0.5)]).unwrap(),
            )
            .with_densify_threshold(1.0),
        ];
        let mut solo = batch.clone();
        let shared = m.step_batch(&mut batch, &[], &mut scratch).unwrap();
        assert_eq!(shared.rows_traversed, 3, "union of supports, each row read once");
        let mut individual = BatchStepStats::default();
        for row in solo.iter_mut() {
            let one = std::slice::from_mut(row);
            individual.merge(m.step_batch(one, &[], &mut scratch).unwrap());
        }
        assert_eq!(individual.rows_traversed, 4, "per-object supports pay overlap twice");
        for (a, b) in batch.iter().zip(&solo) {
            let (da, db) = (a.to_dense(), b.to_dense());
            for s in 0..4 {
                assert_eq!(da.get(s).to_bits(), db.get(s).to_bits());
            }
        }
    }

    #[test]
    fn step_batch_honours_activity_mask() {
        let m = paper_matrix();
        let mut scratch = SpmvScratch::new();
        let mut batch = vec![
            PropagationVector::from_sparse(SparseVector::unit(3, 1).unwrap()),
            PropagationVector::from_sparse(SparseVector::unit(3, 2).unwrap()),
        ];
        let before = batch[1].clone();
        let stats = m.step_batch(&mut batch, &[true, false], &mut scratch).unwrap();
        assert_eq!(stats.vectors_stepped, 1);
        assert_eq!(batch[1], before, "inactive rows are untouched");
        assert!(m.step_batch(&mut batch, &[true], &mut scratch).is_err(), "mask length");
        let mut wrong = vec![PropagationVector::from_dense(DenseVector::from_vec(vec![1.0, 0.0]))];
        assert!(m.step_batch(&mut wrong, &[], &mut scratch).is_err(), "dimension");
    }

    #[test]
    fn to_sparse_roundtrip() {
        let dense = PropagationVector::from_dense(DenseVector::from_vec(vec![0.0, 1.0, 0.0]));
        let s = dense.to_sparse();
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.get(1), 1.0);
    }
}
