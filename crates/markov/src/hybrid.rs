//! Adaptive sparse→dense propagation vectors.
//!
//! An object's location distribution starts with a handful of non-zero
//! entries (the paper's `object_spread` defaults to 5) and fans out by at
//! most `state_spread` successors per step, so early transitions are far
//! cheaper on a sparse vector. As the chain mixes, the vector densifies and
//! sparse bookkeeping becomes pure overhead — beyond roughly 1/4 fill, a
//! dense kernel is faster and allocation-free. [`PropagationVector`] switches
//! representation automatically at a configurable density threshold.
//!
//! This is the "hybrid" design choice ablated in `bench/ablation_hybrid`.

use crate::csr::{CsrMatrix, SpmvScratch};
use crate::dense::DenseVector;
use crate::error::{MarkovError, Result};
use crate::mask::StateMask;
use crate::sparse_vec::SparseVector;

/// Density above which the vector flips to the dense representation.
pub const DEFAULT_DENSIFY_THRESHOLD: f64 = 0.25;

/// The two physical representations of a propagation vector.
#[derive(Debug, Clone, PartialEq)]
enum Repr {
    Sparse(SparseVector),
    Dense(DenseVector),
}

/// A probability vector that propagates through transition matrices,
/// choosing its representation adaptively.
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationVector {
    repr: Repr,
    densify_at: f64,
}

impl PropagationVector {
    /// Starts from a sparse distribution with the default threshold.
    pub fn from_sparse(v: SparseVector) -> Self {
        PropagationVector { repr: Repr::Sparse(v), densify_at: DEFAULT_DENSIFY_THRESHOLD }
    }

    /// Starts from a dense distribution (never converts back to sparse).
    pub fn from_dense(v: DenseVector) -> Self {
        PropagationVector { repr: Repr::Dense(v), densify_at: DEFAULT_DENSIFY_THRESHOLD }
    }

    /// Overrides the densification threshold.
    ///
    /// `1.0` (or anything ≥ 1) keeps the vector sparse forever; `0.0`
    /// densifies on the first step. Used by the ablation benchmarks.
    pub fn with_densify_threshold(mut self, threshold: f64) -> Self {
        self.densify_at = threshold;
        self
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        match &self.repr {
            Repr::Sparse(v) => v.dim(),
            Repr::Dense(v) => v.dim(),
        }
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        match &self.repr {
            Repr::Sparse(v) => v.nnz(),
            Repr::Dense(v) => v.nnz(),
        }
    }

    /// True while the sparse representation is active.
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Total mass (sum of entries).
    pub fn sum(&self) -> f64 {
        match &self.repr {
            Repr::Sparse(v) => v.sum(),
            Repr::Dense(v) => v.sum(),
        }
    }

    /// Value at a single state.
    pub fn get(&self, index: usize) -> f64 {
        match &self.repr {
            Repr::Sparse(v) => v.get(index),
            Repr::Dense(v) => v.get(index),
        }
    }

    /// One transition `v ← v · M`, switching representation if the result
    /// crosses the density threshold.
    pub fn step(&mut self, matrix: &CsrMatrix, scratch: &mut SpmvScratch) -> Result<()> {
        match &self.repr {
            Repr::Sparse(v) => {
                let next = matrix.vecmat_sparse_with(v, scratch)?;
                if next.density() > self.densify_at {
                    self.repr = Repr::Dense(next.to_dense());
                } else {
                    self.repr = Repr::Sparse(next);
                }
            }
            Repr::Dense(v) => {
                self.repr = Repr::Dense(matrix.vecmat_dense(v)?);
            }
        }
        Ok(())
    }

    /// Sum of the mass currently inside `mask`.
    pub fn masked_sum(&self, mask: &StateMask) -> f64 {
        match &self.repr {
            Repr::Sparse(v) => v.masked_sum(mask),
            Repr::Dense(v) => v.masked_sum(mask),
        }
    }

    /// Removes and returns the mass inside `mask` — the virtual application
    /// of the `M+` redirect-to-⊤ column surgery.
    pub fn extract_masked(&mut self, mask: &StateMask) -> f64 {
        match &mut self.repr {
            Repr::Sparse(v) => v.extract_masked(mask),
            Repr::Dense(v) => v.extract_masked(mask),
        }
    }

    /// Removes the entries inside `mask`, returning them as a sparse vector
    /// (the k-times level shift of Section VII).
    pub fn split_masked(&mut self, mask: &StateMask) -> SparseVector {
        match &mut self.repr {
            Repr::Sparse(v) => v.split_masked(mask),
            Repr::Dense(v) => v.split_masked(mask),
        }
    }

    /// Adds a sparse vector into this one (in place).
    pub fn add_sparse(&mut self, other: &SparseVector) -> Result<()> {
        if other.dim() != self.dim() {
            return Err(MarkovError::DimensionMismatch {
                op: "propagation add",
                expected: self.dim(),
                found: other.dim(),
            });
        }
        match &mut self.repr {
            Repr::Sparse(v) => {
                let merged = v.add(other)?;
                if merged.density() > self.densify_at {
                    self.repr = Repr::Dense(merged.to_dense());
                } else {
                    self.repr = Repr::Sparse(merged);
                }
            }
            Repr::Dense(v) => {
                let slice = v.as_mut_slice();
                for (i, val) in other.iter() {
                    slice[i] += val;
                }
            }
        }
        Ok(())
    }

    /// Element-wise multiplication with an observation likelihood (Lemma 1
    /// fusion). The result keeps the current representation.
    pub fn hadamard_sparse(&mut self, obs: &SparseVector) -> Result<()> {
        if obs.dim() != self.dim() {
            return Err(MarkovError::DimensionMismatch {
                op: "observation fusion",
                expected: self.dim(),
                found: obs.dim(),
            });
        }
        match &mut self.repr {
            Repr::Sparse(v) => {
                *v = v.hadamard(obs)?;
            }
            Repr::Dense(v) => {
                // Posterior support is a subset of the observation support,
                // so the result is sparse regardless of the prior's density.
                let pairs: Vec<(usize, f64)> = obs
                    .iter()
                    .map(|(i, likelihood)| (i, likelihood * v.get(i)))
                    .filter(|(_, p)| *p != 0.0)
                    .collect();
                let sparse = SparseVector::from_pairs(v.dim(), pairs)?;
                if sparse.density() > self.densify_at {
                    self.repr = Repr::Dense(sparse.to_dense());
                } else {
                    self.repr = Repr::Sparse(sparse);
                }
            }
        }
        Ok(())
    }

    /// Scales all entries by `factor` (joint renormalization across the
    /// hit/not-hit pair of vectors is done by the caller).
    pub fn scale(&mut self, factor: f64) {
        match &mut self.repr {
            Repr::Sparse(v) => v.scale(factor),
            Repr::Dense(v) => v.scale(factor),
        }
    }

    /// ε-pruning: drops entries with `|v| ≤ threshold`, returning the
    /// dropped mass. Only meaningful on the sparse representation; a dense
    /// vector is left untouched (dropping entries would not shrink it).
    pub fn prune(&mut self, threshold: f64) -> f64 {
        match &mut self.repr {
            Repr::Sparse(v) => v.prune(threshold),
            Repr::Dense(_) => 0.0,
        }
    }

    /// Dot product against a dense vector (e.g. a QB backward vector).
    pub fn dot_dense(&self, other: &DenseVector) -> Result<f64> {
        match &self.repr {
            Repr::Sparse(v) => v.dot_dense(other),
            Repr::Dense(v) => v.dot(other),
        }
    }

    /// Materializes the current state as a dense vector.
    pub fn to_dense(&self) -> DenseVector {
        match &self.repr {
            Repr::Sparse(v) => v.to_dense(),
            Repr::Dense(v) => v.clone(),
        }
    }

    /// Materializes the current state as a sparse vector.
    pub fn to_sparse(&self) -> SparseVector {
        match &self.repr {
            Repr::Sparse(v) => v.clone(),
            Repr::Dense(v) => SparseVector::from_dense(v, 0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_matrix() -> CsrMatrix {
        CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
            .unwrap()
    }

    #[test]
    fn sparse_start_densifies_at_threshold() {
        let m = paper_matrix();
        let mut scratch = SpmvScratch::new();
        let mut v = PropagationVector::from_sparse(SparseVector::unit(3, 1).unwrap())
            .with_densify_threshold(0.5);
        assert!(v.is_sparse());
        v.step(&m, &mut scratch).unwrap(); // (0.6, 0, 0.4): density 2/3 > 0.5
        assert!(!v.is_sparse());
        assert!(v.to_dense().approx_eq(&DenseVector::from_vec(vec![0.6, 0.0, 0.4]), 1e-12));
    }

    #[test]
    fn threshold_one_stays_sparse() {
        let m = paper_matrix();
        let mut scratch = SpmvScratch::new();
        let mut v = PropagationVector::from_sparse(SparseVector::unit(3, 1).unwrap())
            .with_densify_threshold(1.0);
        for _ in 0..10 {
            v.step(&m, &mut scratch).unwrap();
            assert!(v.is_sparse());
        }
        assert!((v.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_and_dense_propagation_agree() {
        let m = paper_matrix();
        let mut scratch = SpmvScratch::new();
        let mut sparse = PropagationVector::from_sparse(SparseVector::unit(3, 0).unwrap())
            .with_densify_threshold(1.0);
        let mut dense = PropagationVector::from_dense(DenseVector::unit(3, 0).unwrap());
        for _ in 0..7 {
            sparse.step(&m, &mut scratch).unwrap();
            dense.step(&m, &mut scratch).unwrap();
            assert!(sparse.to_dense().approx_eq(&dense.to_dense(), 1e-12));
        }
    }

    #[test]
    fn extract_masked_moves_mass_in_both_representations() {
        let mask = StateMask::from_indices(3, [0usize]).unwrap();
        let mut sparse = PropagationVector::from_sparse(
            SparseVector::from_pairs(3, [(0, 0.3), (2, 0.7)]).unwrap(),
        );
        assert!((sparse.extract_masked(&mask) - 0.3).abs() < 1e-12);
        assert!((sparse.sum() - 0.7).abs() < 1e-12);

        let mut dense = PropagationVector::from_dense(DenseVector::from_vec(vec![0.3, 0.0, 0.7]));
        assert!((dense.extract_masked(&mask) - 0.3).abs() < 1e-12);
        assert!((dense.masked_sum(&mask)).abs() < 1e-12);
    }

    #[test]
    fn hadamard_fusion_on_dense_resparsifies() {
        let mut v = PropagationVector::from_dense(DenseVector::from_vec(vec![0.2, 0.5, 0.3]))
            .with_densify_threshold(0.5);
        let obs = SparseVector::from_pairs(3, [(1, 0.5)]).unwrap();
        v.hadamard_sparse(&obs).unwrap();
        assert!(v.is_sparse());
        assert!((v.get(1) - 0.25).abs() < 1e-12);
        assert_eq!(v.nnz(), 1);
        let bad = SparseVector::zeros(5);
        assert!(v.hadamard_sparse(&bad).is_err());
    }

    #[test]
    fn prune_only_affects_sparse() {
        let mut sparse = PropagationVector::from_sparse(
            SparseVector::from_pairs(4, [(0, 1e-12), (1, 0.9)]).unwrap(),
        );
        assert!(sparse.prune(1e-9) > 0.0);
        assert_eq!(sparse.nnz(), 1);
        let mut dense = PropagationVector::from_dense(DenseVector::from_vec(vec![1e-12, 0.9]));
        assert_eq!(dense.prune(1e-9), 0.0);
        assert_eq!(dense.nnz(), 2);
    }

    #[test]
    fn dot_dense_works_in_both_representations() {
        let backward = DenseVector::from_vec(vec![0.96, 0.864, 0.928]);
        let sparse = PropagationVector::from_sparse(SparseVector::unit(3, 1).unwrap());
        assert!((sparse.dot_dense(&backward).unwrap() - 0.864).abs() < 1e-12);
        let dense = PropagationVector::from_dense(DenseVector::unit(3, 1).unwrap());
        assert!((dense.dot_dense(&backward).unwrap() - 0.864).abs() < 1e-12);
    }

    #[test]
    fn split_masked_and_add_sparse_roundtrip() {
        let mask = StateMask::from_indices(4, [1usize, 2]).unwrap();
        for mut v in [
            PropagationVector::from_sparse(
                SparseVector::from_pairs(4, [(0, 0.1), (1, 0.2), (2, 0.3), (3, 0.4)]).unwrap(),
            )
            .with_densify_threshold(1.0),
            PropagationVector::from_dense(DenseVector::from_vec(vec![0.1, 0.2, 0.3, 0.4])),
        ] {
            let split = v.split_masked(&mask);
            assert!((split.sum() - 0.5).abs() < 1e-12);
            assert!((v.sum() - 0.5).abs() < 1e-12);
            assert_eq!(v.get(1), 0.0);
            v.add_sparse(&split).unwrap();
            assert!((v.sum() - 1.0).abs() < 1e-12);
            assert!((v.get(2) - 0.3).abs() < 1e-12);
            assert!(v.add_sparse(&SparseVector::zeros(9)).is_err());
        }
    }

    #[test]
    fn scale_applies_uniformly() {
        let mut v = PropagationVector::from_sparse(
            SparseVector::from_pairs(3, [(0, 0.5), (1, 0.5)]).unwrap(),
        );
        v.scale(2.0);
        assert!((v.sum() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn to_sparse_roundtrip() {
        let dense = PropagationVector::from_dense(DenseVector::from_vec(vec![0.0, 1.0, 0.0]));
        let s = dense.to_sparse();
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.get(1), 1.0);
    }
}
