//! Adaptive sparse→dense propagation vectors.
//!
//! An object's location distribution starts with a handful of non-zero
//! entries (the paper's `object_spread` defaults to 5) and fans out by at
//! most `state_spread` successors per step, so early transitions are far
//! cheaper on a sparse vector. As the chain mixes, the vector densifies and
//! sparse bookkeeping becomes pure overhead — beyond roughly 1/4 fill, a
//! dense kernel is faster and allocation-free. [`PropagationVector`] switches
//! representation automatically at a configurable density threshold.
//!
//! This is the "hybrid" design choice ablated in `bench/ablation_hybrid`.
//! The batched entry points ([`CsrMatrix::step_batch`] and
//! [`CsrMatrix::step_batch_with_mode`]) classify a batch and dispatch to
//! the cache-blocked kernels in [`crate::kernels`].

use crate::csr::{CsrMatrix, SpmvScratch};
use crate::dense::DenseVector;
use crate::error::{MarkovError, Result};
use crate::kernels::{self, KernelMode};
use crate::mask::StateMask;
use crate::sparse_vec::SparseVector;

/// Density above which the vector flips to the dense representation.
pub const DEFAULT_DENSIFY_THRESHOLD: f64 = 0.25;

/// Work counters reported by one [`CsrMatrix::step_batch`] call.
///
/// `rows_traversed` counts *matrix-row reads*: how many times a row's
/// `(columns, values)` pair was streamed from memory. It is the unit the
/// batched kernels amortize — a panel of densified vectors stepped together
/// reads each touched matrix row once per panel instead of once per vector —
/// and the quantity the `pr2_batching` benchmark compares against the
/// per-object baseline. `entries_touched` counts the matrix entries actually
/// multiplied into some vector; it is invariant across kernel choices (every
/// mode performs the same floating-point work), so dividing it by wall time
/// gives the matrix-entry *throughput* the `pr6_kernels` benchmark and the
/// plan cost model consume.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStepStats {
    /// Matrix rows streamed during this batched transition.
    pub rows_traversed: u64,
    /// Matrix entries multiplied into an accumulator (per vector fed).
    pub entries_touched: u64,
    /// Vectors that performed a transition (rows with no mass are skipped).
    pub vectors_stepped: u64,
}

impl BatchStepStats {
    /// Accumulates another report into this one.
    pub fn merge(&mut self, other: BatchStepStats) {
        self.rows_traversed += other.rows_traversed;
        self.entries_touched += other.entries_touched;
        self.vectors_stepped += other.vectors_stepped;
    }
}

impl CsrMatrix {
    /// Batched transition `v ← v · M` for many propagation vectors sharing
    /// one matrix traversal, under the default [`KernelMode::Auto`] policy.
    ///
    /// See [`CsrMatrix::step_batch_with_mode`] for the semantics.
    pub fn step_batch(
        &self,
        rows: &mut [PropagationVector],
        active: &[bool],
        scratch: &mut SpmvScratch,
    ) -> Result<BatchStepStats> {
        self.step_batch_with_mode(rows, active, KernelMode::default(), scratch)
    }

    /// Batched transition `v ← v · M` with an explicit kernel policy.
    ///
    /// `active` enables per-row early exit: when non-empty it must have one
    /// flag per row, and rows flagged `false` (decided objects) are left
    /// untouched without stopping the sweep; an empty slice means all rows
    /// are active. Rows with no mass are always skipped.
    ///
    /// Sparse members either merge over the sorted **union of their
    /// supports** (each matrix row in the union streamed once, feeding every
    /// member holding it) or step individually; `mode` picks the policy,
    /// with [`KernelMode::Auto`] estimating the support overlap per batch.
    /// Densified members step through the interleaved panel kernel
    /// (`kernels::step_dense_panels`), streaming the matrix once
    /// per panel. Per vector, the floating-point operations and their order
    /// are **identical** to an individual [`PropagationVector::step`] in
    /// every mode — batched evaluation is bit-for-bit equal to the
    /// per-object path regardless of batch composition or kernel choice.
    pub fn step_batch_with_mode(
        &self,
        rows: &mut [PropagationVector],
        active: &[bool],
        mode: KernelMode,
        scratch: &mut SpmvScratch,
    ) -> Result<BatchStepStats> {
        if !active.is_empty() && active.len() != rows.len() {
            return Err(MarkovError::DimensionMismatch {
                op: "step_batch activity mask",
                expected: rows.len(),
                found: active.len(),
            });
        }
        let mut stats = BatchStepStats::default();
        // The member lists live in the scratch pool — one allocation per
        // sweep, not one per timestamp. Taken out for the duration of the
        // call so the scratch stays borrowable by the kernels.
        let mut sparse_members = std::mem::take(&mut scratch.members_sparse);
        let mut dense_members = std::mem::take(&mut scratch.members_dense);
        sparse_members.clear();
        dense_members.clear();
        for (r, row) in rows.iter().enumerate() {
            if (!active.is_empty() && !active[r]) || row.nnz() == 0 {
                continue;
            }
            if row.dim() != self.nrows() {
                return Err(MarkovError::DimensionMismatch {
                    op: "step_batch",
                    expected: self.nrows(),
                    found: row.dim(),
                });
            }
            stats.vectors_stepped += 1;
            match &row.repr {
                Repr::Sparse(_) => sparse_members.push(r),
                Repr::Dense(_) => dense_members.push(r),
            }
        }

        let result = (|| {
            self.step_sparse_members(rows, &sparse_members, mode, scratch, &mut stats)?;
            self.step_dense_members(rows, &dense_members, mode, scratch, &mut stats);
            Ok(stats)
        })();
        scratch.members_sparse = sparse_members;
        scratch.members_dense = dense_members;
        result
    }

    /// Dispatches the sparse half of a batch: the shared-union k-way merge
    /// ([`crate::kernels::step_sparse_union`]) when the mode (or the
    /// [`KernelMode::Auto`] overlap estimate) calls for it, individual
    /// steps otherwise. Either way the work counters record the same
    /// `entries_touched`.
    fn step_sparse_members(
        &self,
        rows: &mut [PropagationVector],
        members: &[usize],
        mode: KernelMode,
        scratch: &mut SpmvScratch,
        stats: &mut BatchStepStats,
    ) -> Result<()> {
        if members.is_empty() {
            return Ok(());
        }
        let use_union = members.len() >= 2
            && match mode {
                KernelMode::PerObject => false,
                KernelMode::SharedUnion => true,
                KernelMode::Auto => {
                    kernels::choose_shared_union(members.iter().map(|&r| match &rows[r].repr {
                        Repr::Sparse(v) => {
                            let idx = v.indices();
                            (idx[0], idx[idx.len() - 1], v.nnz())
                        }
                        // lint: allow(panicking-call-in-lib) — `r` was placed in
                        // the sparse partition by the classifier just above.
                        Repr::Dense(_) => unreachable!("membership established by the classifier"),
                    }))
                }
            };
        if !use_union {
            // Per-object baseline (also the single-member fast path):
            // identical operations, none of the merge bookkeeping.
            for &r in members {
                if let Repr::Sparse(v) = &rows[r].repr {
                    stats.rows_traversed += v.nnz() as u64;
                    stats.entries_touched +=
                        v.indices().iter().map(|&i| self.row_nnz(i as usize) as u64).sum::<u64>();
                }
                rows[r].step(self, scratch)?;
            }
            return Ok(());
        }
        let inputs: Vec<SparseVector> = members
            .iter()
            .map(|&r| {
                let placeholder = Repr::Dense(DenseVector::zeros(0));
                match std::mem::replace(&mut rows[r].repr, placeholder) {
                    Repr::Sparse(v) => v,
                    // lint: allow(panicking-call-in-lib) — the sparse partition
                    // only holds rows the classifier tagged `Repr::Sparse`.
                    Repr::Dense(_) => unreachable!("membership established by the classifier"),
                }
            })
            .collect();
        let out = kernels::step_sparse_union(self, &inputs, scratch);
        stats.rows_traversed += out.rows_traversed;
        stats.entries_touched += out.entries_touched;
        for (&r, next) in members.iter().zip(out.outs) {
            let row = &mut rows[r];
            if next.density() > row.densify_at {
                // The kernel's gather pass skips zeros, so the stored-entry
                // count is the exact dense non-zero count.
                row.dense_nnz = next.nnz();
                row.repr = Repr::Dense(next.to_dense());
                scratch.sparse_pool.push(next.into_parts());
            } else {
                row.dense_nnz = 0;
                row.repr = Repr::Sparse(next);
            }
        }
        for input in inputs {
            scratch.sparse_pool.push(input.into_parts());
        }
        Ok(())
    }

    /// Dispatches the dense half of a batch to the panel kernel — one call
    /// over all members (shared traversal), or one call per member under
    /// [`KernelMode::PerObject`] (the baseline traversal the benchmarks
    /// compare against).
    fn step_dense_members(
        &self,
        rows: &mut [PropagationVector],
        members: &[usize],
        mode: KernelMode,
        scratch: &mut SpmvScratch,
        stats: &mut BatchStepStats,
    ) {
        if members.is_empty() {
            return;
        }
        let mut inputs: Vec<DenseVector> = Vec::with_capacity(members.len());
        for &r in members {
            let placeholder = Repr::Sparse(SparseVector::zeros(self.nrows()));
            match std::mem::replace(&mut rows[r].repr, placeholder) {
                Repr::Dense(v) => inputs.push(v),
                // lint: allow(panicking-call-in-lib) — the dense partition only
                // holds rows the classifier tagged `Repr::Dense`.
                Repr::Sparse(_) => unreachable!("membership established by the classifier"),
            }
        }
        let (mut outs, mut counts) = (Vec::new(), Vec::new());
        if mode == KernelMode::PerObject {
            for input in &inputs {
                let out = kernels::step_dense_panels(self, std::slice::from_ref(input), scratch);
                stats.rows_traversed += out.rows_traversed;
                stats.entries_touched += out.entries_touched;
                outs.extend(out.outs);
                counts.extend(out.nnz);
            }
        } else {
            let out = kernels::step_dense_panels(self, &inputs, scratch);
            stats.rows_traversed += out.rows_traversed;
            stats.entries_touched += out.entries_touched;
            outs = out.outs;
            counts = out.nnz;
        }
        for ((&r, out), count) in members.iter().zip(outs).zip(counts) {
            rows[r].repr = Repr::Dense(out);
            rows[r].dense_nnz = count;
        }
        for input in inputs {
            scratch.dense_pool.push(input.into_vec());
        }
    }
}

/// The two physical representations of a propagation vector.
#[derive(Debug, Clone, PartialEq)]
enum Repr {
    Sparse(SparseVector),
    Dense(DenseVector),
}

/// A probability vector that propagates through transition matrices,
/// choosing its representation adaptively.
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationVector {
    repr: Repr,
    densify_at: f64,
    /// Exact non-zero count of the dense representation, maintained
    /// incrementally by every mutating method so the hot `nnz() == 0`
    /// probes of the batch classifier and the pipeline's retirement check
    /// never rescan a densified vector. Invariant: `0` while sparse (the
    /// sparse count is already O(1)).
    dense_nnz: usize,
}

impl PropagationVector {
    /// Starts from a sparse distribution with the default threshold.
    pub fn from_sparse(v: SparseVector) -> Self {
        PropagationVector {
            repr: Repr::Sparse(v),
            densify_at: DEFAULT_DENSIFY_THRESHOLD,
            dense_nnz: 0,
        }
    }

    /// Starts from a dense distribution (never converts back to sparse).
    pub fn from_dense(v: DenseVector) -> Self {
        let dense_nnz = v.nnz();
        PropagationVector { repr: Repr::Dense(v), densify_at: DEFAULT_DENSIFY_THRESHOLD, dense_nnz }
    }

    /// Overrides the densification threshold.
    ///
    /// `1.0` (or anything ≥ 1) keeps the vector sparse forever; `0.0`
    /// densifies on the first step. Used by the ablation benchmarks.
    pub fn with_densify_threshold(mut self, threshold: f64) -> Self {
        self.densify_at = threshold;
        self
    }

    /// Adopts the sparse result of a transition-like operation, densifying
    /// (and seeding the tracked non-zero count) past the threshold.
    fn adopt_sparse_result(&mut self, next: SparseVector) {
        if next.density() > self.densify_at {
            // Stored entries can include explicit zeros (e.g. after a
            // `scale(0.0)`), so count the true non-zeros for the dense side.
            self.dense_nnz = next.values().iter().filter(|v| **v != 0.0).count();
            self.repr = Repr::Dense(next.to_dense());
        } else {
            self.dense_nnz = 0;
            self.repr = Repr::Sparse(next);
        }
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        match &self.repr {
            Repr::Sparse(v) => v.dim(),
            Repr::Dense(v) => v.dim(),
        }
    }

    /// Number of non-zero entries — O(1) in both representations (stored
    /// entries while sparse, the incrementally tracked count once dense).
    pub fn nnz(&self) -> usize {
        match &self.repr {
            Repr::Sparse(v) => v.nnz(),
            Repr::Dense(_) => self.dense_nnz,
        }
    }

    /// True while the sparse representation is active.
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Total mass (sum of entries).
    pub fn sum(&self) -> f64 {
        match &self.repr {
            Repr::Sparse(v) => v.sum(),
            Repr::Dense(v) => v.sum(),
        }
    }

    /// Value at a single state.
    pub fn get(&self, index: usize) -> f64 {
        match &self.repr {
            Repr::Sparse(v) => v.get(index),
            Repr::Dense(v) => v.get(index),
        }
    }

    /// One transition `v ← v · M`, switching representation if the result
    /// crosses the density threshold.
    pub fn step(&mut self, matrix: &CsrMatrix, scratch: &mut SpmvScratch) -> Result<()> {
        match &self.repr {
            Repr::Sparse(v) => {
                let next = matrix.vecmat_sparse_with(v, scratch)?;
                self.adopt_sparse_result(next);
            }
            Repr::Dense(v) => {
                let next = matrix.vecmat_dense(v)?;
                self.dense_nnz = next.nnz();
                self.repr = Repr::Dense(next);
            }
        }
        Ok(())
    }

    /// Sum of the mass currently inside `mask`.
    pub fn masked_sum(&self, mask: &StateMask) -> f64 {
        match &self.repr {
            Repr::Sparse(v) => v.masked_sum(mask),
            Repr::Dense(v) => v.masked_sum(mask),
        }
    }

    /// Removes and returns the mass inside `mask` — the virtual application
    /// of the `M+` redirect-to-⊤ column surgery.
    pub fn extract_masked(&mut self, mask: &StateMask) -> f64 {
        match &mut self.repr {
            Repr::Sparse(v) => v.extract_masked(mask),
            Repr::Dense(v) => {
                let (moved, zeroed) = v.extract_masked_counting(mask);
                self.dense_nnz -= zeroed;
                moved
            }
        }
    }

    /// Removes the entries inside `mask`, returning them as a sparse vector
    /// (the k-times level shift of Section VII).
    pub fn split_masked(&mut self, mask: &StateMask) -> SparseVector {
        match &mut self.repr {
            Repr::Sparse(v) => v.split_masked(mask),
            Repr::Dense(v) => {
                let split = v.split_masked(mask);
                // The split keeps only previously non-zero entries, so its
                // stored count is exactly how many slots were zeroed.
                self.dense_nnz -= split.nnz();
                split
            }
        }
    }

    /// Adds a sparse vector into this one (in place).
    pub fn add_sparse(&mut self, other: &SparseVector) -> Result<()> {
        if other.dim() != self.dim() {
            return Err(MarkovError::DimensionMismatch {
                op: "propagation add",
                expected: self.dim(),
                found: other.dim(),
            });
        }
        match &mut self.repr {
            Repr::Sparse(v) => {
                let merged = v.add(other)?;
                self.adopt_sparse_result(merged);
            }
            Repr::Dense(v) => {
                let slice = v.as_mut_slice();
                for (i, val) in other.iter() {
                    let before = slice[i];
                    let after = before + val;
                    if before == 0.0 && after != 0.0 {
                        self.dense_nnz += 1;
                    } else if before != 0.0 && after == 0.0 {
                        self.dense_nnz -= 1;
                    }
                    slice[i] = after;
                }
            }
        }
        Ok(())
    }

    /// Element-wise multiplication with an observation likelihood (Lemma 1
    /// fusion). The result keeps the current representation.
    pub fn hadamard_sparse(&mut self, obs: &SparseVector) -> Result<()> {
        if obs.dim() != self.dim() {
            return Err(MarkovError::DimensionMismatch {
                op: "observation fusion",
                expected: self.dim(),
                found: obs.dim(),
            });
        }
        match &mut self.repr {
            Repr::Sparse(v) => {
                *v = v.hadamard(obs)?;
            }
            Repr::Dense(v) => {
                // Posterior support is a subset of the observation support,
                // so the result is sparse regardless of the prior's density.
                let pairs: Vec<(usize, f64)> = obs
                    .iter()
                    .map(|(i, likelihood)| (i, likelihood * v.get(i)))
                    .filter(|(_, p)| *p != 0.0)
                    .collect();
                let sparse = SparseVector::from_pairs(v.dim(), pairs)?;
                self.adopt_sparse_result(sparse);
            }
        }
        Ok(())
    }

    /// Scales all entries by `factor` (joint renormalization across the
    /// hit/not-hit pair of vectors is done by the caller).
    pub fn scale(&mut self, factor: f64) {
        match &mut self.repr {
            Repr::Sparse(v) => v.scale(factor),
            Repr::Dense(v) => {
                // Recount while multiplying: scaling can zero entries
                // (factor 0, underflow) without shrinking the storage.
                let mut count = 0usize;
                for x in v.as_mut_slice() {
                    *x *= factor;
                    if *x != 0.0 {
                        count += 1;
                    }
                }
                self.dense_nnz = count;
            }
        }
    }

    /// ε-pruning: drops entries with `|v| ≤ threshold`, returning the
    /// dropped mass. Only meaningful on the sparse representation; a dense
    /// vector is left untouched (dropping entries would not shrink it).
    pub fn prune(&mut self, threshold: f64) -> f64 {
        match &mut self.repr {
            Repr::Sparse(v) => v.prune(threshold),
            Repr::Dense(_) => 0.0,
        }
    }

    /// Dot product against a dense vector (e.g. a QB backward vector).
    pub fn dot_dense(&self, other: &DenseVector) -> Result<f64> {
        match &self.repr {
            Repr::Sparse(v) => v.dot_dense(other),
            Repr::Dense(v) => v.dot(other),
        }
    }

    /// Materializes the current state as a dense vector.
    pub fn to_dense(&self) -> DenseVector {
        match &self.repr {
            Repr::Sparse(v) => v.to_dense(),
            Repr::Dense(v) => v.clone(),
        }
    }

    /// Materializes the current state as a sparse vector.
    pub fn to_sparse(&self) -> SparseVector {
        match &self.repr {
            Repr::Sparse(v) => v.clone(),
            Repr::Dense(v) => SparseVector::from_dense(v, 0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_matrix() -> CsrMatrix {
        CsrMatrix::from_dense(&[vec![0.0, 0.0, 1.0], vec![0.6, 0.0, 0.4], vec![0.0, 0.8, 0.2]])
            .unwrap()
    }

    #[test]
    fn sparse_start_densifies_at_threshold() {
        let m = paper_matrix();
        let mut scratch = SpmvScratch::new();
        let mut v = PropagationVector::from_sparse(SparseVector::unit(3, 1).unwrap())
            .with_densify_threshold(0.5);
        assert!(v.is_sparse());
        v.step(&m, &mut scratch).unwrap(); // (0.6, 0, 0.4): density 2/3 > 0.5
        assert!(!v.is_sparse());
        assert!(v.to_dense().approx_eq(&DenseVector::from_vec(vec![0.6, 0.0, 0.4]), 1e-12));
    }

    #[test]
    fn threshold_one_stays_sparse() {
        let m = paper_matrix();
        let mut scratch = SpmvScratch::new();
        let mut v = PropagationVector::from_sparse(SparseVector::unit(3, 1).unwrap())
            .with_densify_threshold(1.0);
        for _ in 0..10 {
            v.step(&m, &mut scratch).unwrap();
            assert!(v.is_sparse());
        }
        assert!((v.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_and_dense_propagation_agree() {
        let m = paper_matrix();
        let mut scratch = SpmvScratch::new();
        let mut sparse = PropagationVector::from_sparse(SparseVector::unit(3, 0).unwrap())
            .with_densify_threshold(1.0);
        let mut dense = PropagationVector::from_dense(DenseVector::unit(3, 0).unwrap());
        for _ in 0..7 {
            sparse.step(&m, &mut scratch).unwrap();
            dense.step(&m, &mut scratch).unwrap();
            assert!(sparse.to_dense().approx_eq(&dense.to_dense(), 1e-12));
        }
    }

    #[test]
    fn extract_masked_moves_mass_in_both_representations() {
        let mask = StateMask::from_indices(3, [0usize]).unwrap();
        let mut sparse = PropagationVector::from_sparse(
            SparseVector::from_pairs(3, [(0, 0.3), (2, 0.7)]).unwrap(),
        );
        assert!((sparse.extract_masked(&mask) - 0.3).abs() < 1e-12);
        assert!((sparse.sum() - 0.7).abs() < 1e-12);

        let mut dense = PropagationVector::from_dense(DenseVector::from_vec(vec![0.3, 0.0, 0.7]));
        assert!((dense.extract_masked(&mask) - 0.3).abs() < 1e-12);
        assert!((dense.masked_sum(&mask)).abs() < 1e-12);
    }

    #[test]
    fn hadamard_fusion_on_dense_resparsifies() {
        let mut v = PropagationVector::from_dense(DenseVector::from_vec(vec![0.2, 0.5, 0.3]))
            .with_densify_threshold(0.5);
        let obs = SparseVector::from_pairs(3, [(1, 0.5)]).unwrap();
        v.hadamard_sparse(&obs).unwrap();
        assert!(v.is_sparse());
        assert!((v.get(1) - 0.25).abs() < 1e-12);
        assert_eq!(v.nnz(), 1);
        let bad = SparseVector::zeros(5);
        assert!(v.hadamard_sparse(&bad).is_err());
    }

    #[test]
    fn prune_only_affects_sparse() {
        let mut sparse = PropagationVector::from_sparse(
            SparseVector::from_pairs(4, [(0, 1e-12), (1, 0.9)]).unwrap(),
        );
        assert!(sparse.prune(1e-9) > 0.0);
        assert_eq!(sparse.nnz(), 1);
        let mut dense = PropagationVector::from_dense(DenseVector::from_vec(vec![1e-12, 0.9]));
        assert_eq!(dense.prune(1e-9), 0.0);
        assert_eq!(dense.nnz(), 2);
    }

    #[test]
    fn dot_dense_works_in_both_representations() {
        let backward = DenseVector::from_vec(vec![0.96, 0.864, 0.928]);
        let sparse = PropagationVector::from_sparse(SparseVector::unit(3, 1).unwrap());
        assert!((sparse.dot_dense(&backward).unwrap() - 0.864).abs() < 1e-12);
        let dense = PropagationVector::from_dense(DenseVector::unit(3, 1).unwrap());
        assert!((dense.dot_dense(&backward).unwrap() - 0.864).abs() < 1e-12);
    }

    #[test]
    fn split_masked_and_add_sparse_roundtrip() {
        let mask = StateMask::from_indices(4, [1usize, 2]).unwrap();
        for mut v in [
            PropagationVector::from_sparse(
                SparseVector::from_pairs(4, [(0, 0.1), (1, 0.2), (2, 0.3), (3, 0.4)]).unwrap(),
            )
            .with_densify_threshold(1.0),
            PropagationVector::from_dense(DenseVector::from_vec(vec![0.1, 0.2, 0.3, 0.4])),
        ] {
            let split = v.split_masked(&mask);
            assert!((split.sum() - 0.5).abs() < 1e-12);
            assert!((v.sum() - 0.5).abs() < 1e-12);
            assert_eq!(v.get(1), 0.0);
            assert_eq!(v.nnz(), 2);
            v.add_sparse(&split).unwrap();
            assert!((v.sum() - 1.0).abs() < 1e-12);
            assert!((v.get(2) - 0.3).abs() < 1e-12);
            assert_eq!(v.nnz(), 4);
            assert!(v.add_sparse(&SparseVector::zeros(9)).is_err());
        }
    }

    #[test]
    fn scale_applies_uniformly() {
        let mut v = PropagationVector::from_sparse(
            SparseVector::from_pairs(3, [(0, 0.5), (1, 0.5)]).unwrap(),
        );
        v.scale(2.0);
        assert!((v.sum() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dense_nnz_stays_exact_across_mutations() {
        let m = paper_matrix();
        let mut scratch = SpmvScratch::new();
        let mut v = PropagationVector::from_dense(DenseVector::from_vec(vec![0.0, 1.0, 0.0]));
        let check = |v: &PropagationVector| {
            assert_eq!(v.nnz(), v.to_dense().nnz(), "tracked count matches a rescan");
        };
        check(&v);
        for _ in 0..4 {
            v.step(&m, &mut scratch).unwrap();
            check(&v);
        }
        let mask = StateMask::from_indices(3, [0usize]).unwrap();
        v.extract_masked(&mask);
        check(&v);
        let split = v.split_masked(&StateMask::from_indices(3, [2usize]).unwrap());
        check(&v);
        v.add_sparse(&split).unwrap();
        check(&v);
        v.scale(0.0);
        check(&v);
        assert_eq!(v.nnz(), 0, "scaling by zero empties the vector");
    }

    #[test]
    fn step_batch_is_bit_identical_to_individual_steps() {
        let m = paper_matrix();
        let mut scratch = SpmvScratch::new();
        // A mixed batch: one sparse-forever row, one densifying row, one
        // already-dense row and one empty row.
        let mut batch = vec![
            PropagationVector::from_sparse(SparseVector::unit(3, 1).unwrap())
                .with_densify_threshold(1.0),
            PropagationVector::from_sparse(SparseVector::unit(3, 0).unwrap())
                .with_densify_threshold(0.3),
            PropagationVector::from_dense(DenseVector::from_vec(vec![0.25, 0.5, 0.25])),
            PropagationVector::from_sparse(SparseVector::zeros(3)),
        ];
        let mut solo = batch.clone();
        for _ in 0..6 {
            let stats = m.step_batch(&mut batch, &[], &mut scratch).unwrap();
            assert_eq!(stats.vectors_stepped, 3, "empty row skipped");
            for row in solo.iter_mut() {
                if row.nnz() > 0 {
                    row.step(&m, &mut scratch).unwrap();
                }
            }
            for (a, b) in batch.iter().zip(&solo) {
                assert_eq!(a.is_sparse(), b.is_sparse());
                assert_eq!(a.nnz(), b.nnz());
                let (da, db) = (a.to_dense(), b.to_dense());
                for s in 0..3 {
                    assert_eq!(da.get(s).to_bits(), db.get(s).to_bits(), "state {s}");
                }
            }
        }
    }

    #[test]
    fn step_batch_modes_agree_bitwise() {
        let m = paper_matrix();
        let mut scratch = SpmvScratch::new();
        let template = vec![
            PropagationVector::from_sparse(SparseVector::unit(3, 1).unwrap())
                .with_densify_threshold(1.0),
            PropagationVector::from_sparse(SparseVector::unit(3, 2).unwrap())
                .with_densify_threshold(1.0),
            PropagationVector::from_dense(DenseVector::from_vec(vec![0.25, 0.5, 0.25])),
            PropagationVector::from_dense(DenseVector::from_vec(vec![0.5, 0.25, 0.25])),
        ];
        let mut per_mode: Vec<Vec<PropagationVector>> = Vec::new();
        for mode in [KernelMode::Auto, KernelMode::SharedUnion, KernelMode::PerObject] {
            let mut batch = template.clone();
            let mut totals = BatchStepStats::default();
            for _ in 0..5 {
                totals.merge(m.step_batch_with_mode(&mut batch, &[], mode, &mut scratch).unwrap());
            }
            per_mode.push(batch);
            assert!(totals.entries_touched > 0, "{mode:?} reports entry work");
        }
        for batch in &per_mode[1..] {
            for (a, b) in per_mode[0].iter().zip(batch) {
                let (da, db) = (a.to_dense(), b.to_dense());
                for s in 0..3 {
                    assert_eq!(da.get(s).to_bits(), db.get(s).to_bits());
                }
            }
        }
    }

    #[test]
    fn per_object_mode_skips_sharing_but_counts_same_entries() {
        let m = CsrMatrix::from_dense(&[
            vec![0.5, 0.5, 0.0, 0.0],
            vec![0.0, 0.5, 0.5, 0.0],
            vec![0.0, 0.0, 0.5, 0.5],
            vec![0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap();
        let mut scratch = SpmvScratch::new();
        let template = vec![
            PropagationVector::from_sparse(
                SparseVector::from_pairs(4, [(0, 0.5), (1, 0.5)]).unwrap(),
            )
            .with_densify_threshold(1.0),
            PropagationVector::from_sparse(
                SparseVector::from_pairs(4, [(1, 0.5), (2, 0.5)]).unwrap(),
            )
            .with_densify_threshold(1.0),
        ];
        let mut shared = template.clone();
        let s = m
            .step_batch_with_mode(&mut shared, &[], KernelMode::SharedUnion, &mut scratch)
            .unwrap();
        let mut solo = template.clone();
        let p =
            m.step_batch_with_mode(&mut solo, &[], KernelMode::PerObject, &mut scratch).unwrap();
        assert_eq!(s.rows_traversed, 3, "union reads each support row once");
        assert_eq!(p.rows_traversed, 4, "per-object pays the overlap twice");
        assert_eq!(s.entries_touched, p.entries_touched, "identical multiply work");
    }

    #[test]
    fn step_batch_shares_dense_row_traversals() {
        let m = paper_matrix();
        let mut scratch = SpmvScratch::new();
        let mut batch = vec![
            PropagationVector::from_dense(DenseVector::from_vec(vec![0.2, 0.3, 0.5])),
            PropagationVector::from_dense(DenseVector::from_vec(vec![0.5, 0.3, 0.2])),
        ];
        let shared = m.step_batch(&mut batch, &[], &mut scratch).unwrap();
        // Two full dense vectors over 3 matrix rows: the shared traversal
        // reads each row once (3), the per-object path twice (6).
        assert_eq!(shared.rows_traversed, 3);
        let mut solo =
            vec![PropagationVector::from_dense(DenseVector::from_vec(vec![0.2, 0.3, 0.5]))];
        let alone = m.step_batch(&mut solo, &[], &mut scratch).unwrap();
        assert_eq!(alone.rows_traversed, 3);
    }

    #[test]
    fn step_batch_shares_overlapping_sparse_supports() {
        let m = CsrMatrix::from_dense(&[
            vec![0.5, 0.5, 0.0, 0.0],
            vec![0.0, 0.5, 0.5, 0.0],
            vec![0.0, 0.0, 0.5, 0.5],
            vec![0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap();
        let mut scratch = SpmvScratch::new();
        // Supports {0, 1} and {1, 2}: the union {0, 1, 2} is 3 matrix-row
        // reads, the per-object sum is 4 — enough overlap that the Auto
        // heuristic picks the shared-union merge.
        let mut batch = vec![
            PropagationVector::from_sparse(
                SparseVector::from_pairs(4, [(0, 0.5), (1, 0.5)]).unwrap(),
            )
            .with_densify_threshold(1.0),
            PropagationVector::from_sparse(
                SparseVector::from_pairs(4, [(1, 0.5), (2, 0.5)]).unwrap(),
            )
            .with_densify_threshold(1.0),
        ];
        let mut solo = batch.clone();
        let shared = m.step_batch(&mut batch, &[], &mut scratch).unwrap();
        assert_eq!(shared.rows_traversed, 3, "union of supports, each row read once");
        let mut individual = BatchStepStats::default();
        for row in solo.iter_mut() {
            let one = std::slice::from_mut(row);
            individual.merge(m.step_batch(one, &[], &mut scratch).unwrap());
        }
        assert_eq!(individual.rows_traversed, 4, "per-object supports pay overlap twice");
        assert_eq!(shared.entries_touched, individual.entries_touched);
        for (a, b) in batch.iter().zip(&solo) {
            let (da, db) = (a.to_dense(), b.to_dense());
            for s in 0..4 {
                assert_eq!(da.get(s).to_bits(), db.get(s).to_bits());
            }
        }
    }

    #[test]
    fn step_batch_honours_activity_mask() {
        let m = paper_matrix();
        let mut scratch = SpmvScratch::new();
        let mut batch = vec![
            PropagationVector::from_sparse(SparseVector::unit(3, 1).unwrap()),
            PropagationVector::from_sparse(SparseVector::unit(3, 2).unwrap()),
        ];
        let before = batch[1].clone();
        let stats = m.step_batch(&mut batch, &[true, false], &mut scratch).unwrap();
        assert_eq!(stats.vectors_stepped, 1);
        assert_eq!(batch[1], before, "inactive rows are untouched");
        assert!(m.step_batch(&mut batch, &[true], &mut scratch).is_err(), "mask length");
        let mut wrong = vec![PropagationVector::from_dense(DenseVector::from_vec(vec![1.0, 0.0]))];
        assert!(m.step_batch(&mut wrong, &[], &mut scratch).is_err(), "dimension");
    }

    #[test]
    fn to_sparse_roundtrip() {
        let dense = PropagationVector::from_dense(DenseVector::from_vec(vec![0.0, 1.0, 0.0]));
        let s = dense.to_sparse();
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.get(1), 1.0);
    }
}
