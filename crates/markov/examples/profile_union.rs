//! Microbenchmark harness for the batched sparse kernels, shaped like the
//! fig11-ci locality workload (10k states, 5 random successors in a
//! 50-wide band, contiguous 5-state starts at random centers).
//!
//! Compares the shared-union, adaptive and per-object kernel modes with
//! the two solo step orders (object-major = hot cache, step-major = the
//! access pattern a batch forces), isolating kernel cost from driver and
//! window bookkeeping. Useful when tuning `kernels.rs` — the full
//! `pr6_kernels` paper experiment measures the same trade end to end.

use std::time::Instant;

use ust_markov::{CooBuilder, CsrMatrix, KernelMode, PropagationVector, SparseVector, SpmvScratch};

struct Lcg(u64);
impl Lcg {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound
    }
}

fn banded(n: usize, max_step: usize, spread: usize, rng: &mut Lcg) -> CsrMatrix {
    let mut coo = CooBuilder::new(n, n);
    let mut cols = Vec::new();
    for i in 0..n {
        let lo = i.saturating_sub(max_step / 2);
        let hi = (i + max_step / 2).min(n - 1);
        cols.clear();
        while cols.len() < spread {
            let c = lo + rng.next(hi - lo + 1);
            if !cols.contains(&c) {
                cols.push(c);
            }
        }
        cols.sort_unstable();
        for &c in &cols {
            coo.push(i, c, 1.0 / spread as f64).unwrap();
        }
    }
    coo.build()
}

fn main() {
    let n = 10_000;
    let mut rng = Lcg(42);
    let m = banded(n, 50, 5, &mut rng);
    let members = 128usize;
    let steps = 25u32;
    let rounds = 50;

    let starts: Vec<usize> = (0..members).map(|_| rng.next(n - 5)).collect();
    let make = |starts: &[usize]| -> Vec<PropagationVector> {
        starts
            .iter()
            .map(|&s| {
                let v = SparseVector::from_pairs(n, (s..s + 5).map(|i| (i, 0.2))).unwrap();
                PropagationVector::from_sparse(v).with_densify_threshold(0.25)
            })
            .collect()
    };

    for (label, mode) in [
        ("shared-union", KernelMode::SharedUnion),
        ("auto        ", KernelMode::Auto),
        ("per-object  ", KernelMode::PerObject),
    ] {
        let mut scratch = SpmvScratch::new();
        let t0 = Instant::now();
        for _ in 0..rounds {
            let mut rows = make(&starts);
            for _ in 0..steps {
                m.step_batch_with_mode(&mut rows, &[], mode, &mut scratch).unwrap();
            }
        }
        println!("{label}  batch: {:?}", t0.elapsed() / rounds);
    }

    // Solo loop: object-at-a-time, all steps consecutively (hot cache) —
    // what the batch-1 baseline effectively runs.
    let mut scratch = SpmvScratch::new();
    let t0 = Instant::now();
    for _ in 0..rounds {
        let mut rows = make(&starts);
        for row in &mut rows {
            for _ in 0..steps {
                row.step(&m, &mut scratch).unwrap();
            }
        }
    }
    println!("solo object-major: {:?}", t0.elapsed() / rounds);

    // Solo loop, step-major order (cold cache, same ops as batch per-object).
    let mut scratch = SpmvScratch::new();
    let t0 = Instant::now();
    for _ in 0..rounds {
        let mut rows = make(&starts);
        for _ in 0..steps {
            for row in &mut rows {
                row.step(&m, &mut scratch).unwrap();
            }
        }
    }
    println!("solo step-major  : {:?}", t0.elapsed() / rounds);
}
